package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// This file encodes a Registry in the Prometheus text exposition format
// (version 0.0.4) and provides a strict-enough validator that smoke tests
// and `make obs-smoke` use to fail on malformed output.

// WriteText encodes every registered family:
//
//	# HELP name help
//	# TYPE name counter|gauge|histogram
//	name{label="v"} 42
//
// Histograms expand into cumulative name_bucket{le="..."} series plus
// name_sum and name_count. Families appear in registration order, samples
// in metric registration order, so scrapes are diffable.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		// Copy the header and the metric slice; the metrics themselves are
		// read atomically outside the lock.
		fams = append(fams, &family{name: f.name, help: f.help, kind: f.kind, metrics: append([]sampler(nil), f.metrics...)})
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, m := range f.metrics {
			writeSamples(bw, f.name, m)
		}
	}
	return bw.Flush()
}

func writeSamples(w io.Writer, name string, m sampler) {
	switch v := m.(type) {
	case *Counter:
		fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(v.labels, "", 0), formatFloat(float64(v.Value())))
	case *counterFunc:
		fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(v.labels, "", 0), formatFloat(v.fn()))
	case *Gauge:
		fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(v.labels, "", 0), formatFloat(v.Value()))
	case *gaugeFunc:
		fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(v.labels, "", 0), formatFloat(v.fn()))
	case *Histogram:
		cum, count, sum := v.snapshot()
		for i, ub := range v.upper {
			fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(v.labels, "le", ub), cum[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(v.labels, "le", math.Inf(+1)), cum[len(cum)-1])
		fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(v.labels, "", 0), formatFloat(sum))
		fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(v.labels, "", 0), count)
	}
}

// renderLabels renders {a="b",...}, optionally appending an le bound, or
// "" when there is nothing to render.
func renderLabels(labels []Label, leName string, le float64) string {
	if len(labels) == 0 && leName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, escapeLabel(l.Value))
	}
	if leName != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", leName, formatFloat(le))
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
	// The %q in renderLabels already escapes double quotes.
}

// formatFloat renders a sample value the way Prometheus expects: shortest
// round-trip representation, with +Inf/-Inf spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// ValidateExposition parses Prometheus text exposition from r and returns
// the number of families and samples seen. It fails on: sample lines that
// do not parse (name, optional {labels}, float value), samples whose
// family has no preceding TYPE header, histogram families missing _sum or
// _count, and non-monotone cumulative bucket series. It is the gate behind
// `make obs-smoke`.
func ValidateExposition(r io.Reader) (families, samples int, err error) {
	types := make(map[string]string)
	bucketPrev := make(map[string]uint64) // per series: last cumulative bucket count
	sums := make(map[string]bool)
	counts := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return 0, 0, fmt.Errorf("line %d: malformed TYPE header %q", lineNo, line)
			}
			name, kind := fields[2], fields[3]
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return 0, 0, fmt.Errorf("line %d: unknown metric type %q", lineNo, kind)
			}
			if _, dup := types[name]; dup {
				return 0, 0, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
			}
			types[name] = kind
			families++
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or comment
		}
		name, labels, value, perr := parseSample(line)
		if perr != nil {
			return 0, 0, fmt.Errorf("line %d: %v", lineNo, perr)
		}
		samples++
		base := name
		switch {
		case strings.HasSuffix(name, "_bucket") && types[strings.TrimSuffix(name, "_bucket")] == "histogram":
			base = strings.TrimSuffix(name, "_bucket")
			series := base + "{" + withoutLE(labels) + "}"
			cum := uint64(value)
			if prev, ok := bucketPrev[series]; ok && cum < prev {
				return 0, 0, fmt.Errorf("line %d: histogram %s bucket series not monotone (%d after %d)", lineNo, base, cum, prev)
			}
			bucketPrev[series] = cum
		case strings.HasSuffix(name, "_sum") && types[strings.TrimSuffix(name, "_sum")] == "histogram":
			base = strings.TrimSuffix(name, "_sum")
			sums[base] = true
		case strings.HasSuffix(name, "_count") && types[strings.TrimSuffix(name, "_count")] == "histogram":
			base = strings.TrimSuffix(name, "_count")
			counts[base] = true
		}
		if _, ok := types[base]; !ok {
			return 0, 0, fmt.Errorf("line %d: sample %q has no TYPE header", lineNo, name)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, 0, err
	}
	for name, kind := range types {
		if kind != "histogram" {
			continue
		}
		if !sums[name] || !counts[name] {
			return 0, 0, fmt.Errorf("histogram %q missing _sum or _count", name)
		}
	}
	return families, samples, nil
}

// withoutLE strips the le pair from a rendered label body so all buckets
// of one series share a key.
func withoutLE(labels string) string {
	parts := strings.Split(labels, ",")
	kept := parts[:0]
	for _, p := range parts {
		if !strings.HasPrefix(strings.TrimSpace(p), "le=") {
			kept = append(kept, p)
		}
	}
	return strings.Join(kept, ",")
}

// parseSample splits `name{labels} value` (labels optional). It returns
// the label body without braces.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", 0, fmt.Errorf("malformed sample %q", line)
		}
		name = fields[0]
		rest = fields[1]
	}
	if name == "" || !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name in %q", line)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	}
	v, perr := strconv.ParseFloat(strings.TrimPrefix(fields[0], "+"), 64)
	if perr != nil {
		return "", "", 0, fmt.Errorf("bad sample value in %q: %v", line, perr)
	}
	return name, labels, v, nil
}

func validMetricName(s string) bool {
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return s != ""
}
