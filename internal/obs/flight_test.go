package obs

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestSLOTrackerBurnAndStatus(t *testing.T) {
	tr, err := NewSLOTracker([]Objective{
		{Name: "latency_p99", Kind: ObjectiveLatency, Target: 0.99, LatencyBound: 50 * time.Millisecond},
		{Name: "error_rate", Kind: ObjectiveErrorRate, Target: 0.999},
		{Name: "cache_hit_rate", Kind: ObjectiveCacheHitRate, Target: 0.80, NoBurnAlert: true},
	}, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 50 good, 50 bad latency samples: good ratio 0.5, burn 50x budget.
	for i := 0; i < 50; i++ {
		tr.Observe(QueryOutcome{Latency: time.Millisecond, CacheHits: 3, CacheMisses: 1})
		tr.Observe(QueryOutcome{Latency: time.Second})
	}
	sts := tr.Status()
	if len(sts) != 3 {
		t.Fatalf("got %d statuses", len(sts))
	}
	lat := sts[0]
	if lat.Windows[0].Good != 50 || lat.Windows[0].Bad != 50 {
		t.Fatalf("latency 1m counts = %d/%d, want 50/50", lat.Windows[0].Good, lat.Windows[0].Bad)
	}
	wantBurn := 0.5 / (1 - 0.99)
	if got := lat.FastBurn; got < wantBurn-1e-9 || got > wantBurn+1e-9 {
		t.Fatalf("fast burn = %g, want %g", got, wantBurn)
	}
	if !lat.Breached {
		t.Fatal("latency objective should be breached at 50x burn")
	}
	// Errors: all good → burn 0, not breached.
	if sts[1].Breached || sts[1].FastBurn != 0 {
		t.Fatalf("error_rate: breached=%v burn=%g", sts[1].Breached, sts[1].FastBurn)
	}
	// Hit rate: NoBurnAlert never breaches even at any ratio.
	if sts[2].Breached {
		t.Fatal("NoBurnAlert objective must not breach")
	}
	if r, n, ok := tr.WindowRatio("cache_hit_rate", "1m"); !ok || n != 200 || r != 0.75 {
		t.Fatalf("WindowRatio = %g/%d/%v, want 0.75/200/true", r, n, ok)
	}
	if _, _, ok := tr.WindowRatio("nope", "1m"); ok {
		t.Fatal("unknown objective must report !ok")
	}
	// Sheds feed the shedless objectives nothing.
	tr.Observe(QueryOutcome{Shed: true})
	after := tr.Status()
	if after[0].Windows[0].Good+after[0].Windows[0].Bad != 100 {
		t.Fatal("shed leaked into the latency objective")
	}
}

func TestSLOTrackerMinEventsGuardsColdWindows(t *testing.T) {
	tr, err := NewSLOTracker([]Objective{
		{Name: "error_rate", Kind: ObjectiveErrorRate, Target: 0.999},
	}, 0, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	// 5 hard failures: astronomic burn but below minEvents.
	for i := 0; i < 5; i++ {
		tr.Observe(QueryOutcome{Err: true, Latency: time.Millisecond})
	}
	if tr.Status()[0].Breached {
		t.Fatal("5 samples must not breach with minEvents=20")
	}
}

func TestObjectiveValidate(t *testing.T) {
	bad := []Objective{
		{},
		{Name: "x", Target: 0},
		{Name: "x", Target: 1},
		{Name: "x", Kind: ObjectiveLatency, Target: 0.9},
	}
	for i, o := range bad {
		if o.Validate() == nil {
			t.Fatalf("objective %d should fail validation", i)
		}
	}
	if _, err := NewSLOTracker(bad[:1], 0, 0, 0); err == nil {
		t.Fatal("tracker must reject invalid objectives")
	}
}

func TestSpikeDetectorFiresOnSustainedSpikes(t *testing.T) {
	d := newSpikeDetector(8, 3)
	// Steady 10ms baseline through warmup.
	for i := 0; i < 100; i++ {
		if fire, _ := d.observe(10 * time.Millisecond); fire {
			t.Fatal("steady stream must not fire")
		}
	}
	// One outlier: spiky but below sustain.
	if fire, _ := d.observe(500 * time.Millisecond); fire {
		t.Fatal("single outlier must not fire")
	}
	// Streak resets on a normal sample.
	d.observe(10 * time.Millisecond)
	d.observe(500 * time.Millisecond)
	d.observe(500 * time.Millisecond)
	fire, ev := d.observe(500 * time.Millisecond)
	if !fire {
		t.Fatal("3 consecutive spikes must fire with sustain=3")
	}
	if ev["latency_ms"] != 500 {
		t.Fatalf("evidence latency = %g, want 500", ev["latency_ms"])
	}
}

func TestDebouncerGlobalCooldown(t *testing.T) {
	d := newDebouncer(time.Minute)
	t0 := time.Now()
	if !d.allow(t0) {
		t.Fatal("first trigger must pass")
	}
	if d.allow(t0.Add(30 * time.Second)) {
		t.Fatal("trigger inside cooldown must be suppressed")
	}
	if !d.allow(t0.Add(61 * time.Second)) {
		t.Fatal("trigger after cooldown must pass")
	}
}

func TestTriggerRingNewestFirst(t *testing.T) {
	r := newTriggerRing(3)
	for i := 0; i < 5; i++ {
		r.add(TriggerRecord{Trigger: Trigger{Kind: TriggerManual, Detail: string(rune('a' + i))}})
	}
	got := r.list()
	if len(got) != 3 {
		t.Fatalf("ring kept %d, want 3", len(got))
	}
	if got[0].Detail != "e" || got[2].Detail != "c" {
		t.Fatalf("order = %s..%s, want e..c", got[0].Detail, got[2].Detail)
	}
}

// readBundle unpacks an archive into name → content.
func readBundle(t *testing.T, path string) map[string][]byte {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(tr)
		if err != nil {
			t.Fatal(err)
		}
		out[hdr.Name] = b
	}
	return out
}

func TestBundleCaptureRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := newBundleStore(dir, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.Counter("ceps_test_total", "help").Add(7)
	traces := NewTraceStore(8)
	traces.Add(&Trace{TraceID: "0123456789abcdef", Name: "query", DurationMS: 12})
	stats := []StatSource{{Name: "cache", Fn: func() any { return map[string]int{"hits": 3} }}}

	trig := Trigger{Kind: TriggerManual, Detail: "test", Time: time.Now(), Evidence: map[string]float64{"x": 1}}
	info, entries := captureBundle(trig, trig.Time, 50*time.Millisecond, 4, reg, traces, stats)
	written, err := store.write(info, entries)
	if err != nil {
		t.Fatal(err)
	}
	got := readBundle(t, filepath.Join(dir, written.ID+".tar.gz"))
	for _, name := range []string{"index.json", "evidence.json", "cpu.pprof", "heap.pprof", "goroutine.pprof", "traces.json", "metrics.prom", "stats.json"} {
		if len(got[name]) == 0 {
			t.Fatalf("bundle missing %s (have %v)", name, written.Files)
		}
	}
	// The metrics snapshot must be valid exposition.
	if _, _, err := ValidateExposition(bytes.NewReader(got["metrics.prom"])); err != nil {
		t.Fatalf("bundle metrics.prom invalid: %v", err)
	}
	if !strings.Contains(string(got["metrics.prom"]), "ceps_test_total 7") {
		t.Fatal("metrics.prom missing counter sample")
	}
	var kept []Trace
	if err := json.Unmarshal(got["traces.json"], &kept); err != nil || len(kept) != 1 || kept[0].TraceID != "0123456789abcdef" {
		t.Fatalf("traces.json = %s err=%v", got["traces.json"], err)
	}
	var idx BundleInfo
	if err := json.Unmarshal(got["index.json"], &idx); err != nil || idx.Trigger != TriggerManual {
		t.Fatalf("index.json = %s err=%v", got["index.json"], err)
	}
	// A fresh store scan recovers the bundle from its index.
	store2, err := newBundleStore(dir, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	list := store2.list()
	if len(list) != 1 || list[0].ID != written.ID || list[0].Trigger != TriggerManual {
		t.Fatalf("rescan = %+v", list)
	}
}

func TestBundleStoreEvictsOldestPastBudget(t *testing.T) {
	dir := t.TempDir()
	// Tiny budget: each bundle is a few hundred bytes, so budget fits ~2.
	store, err := newBundleStore(dir, 2500)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 5; i++ {
		trig := Trigger{Kind: TriggerManual, Detail: strings.Repeat("x", 600), Time: time.Now().Add(time.Duration(i) * time.Millisecond)}
		info, entries := captureBundle(trig, trig.Time, 0, 0, nil, nil, nil)
		info.ID = info.ID + string(rune('a'+i)) // distinct ids within one ms
		written, err := store.write(info, entries)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, written.ID)
	}
	list := store.list()
	if len(list) >= 5 {
		t.Fatalf("no eviction happened: %d bundles retained", len(list))
	}
	// The newest bundle always survives.
	if list[0].ID != ids[4] {
		t.Fatalf("newest bundle evicted; have %s want %s", list[0].ID, ids[4])
	}
	// On-disk files match the in-memory list.
	ents, _ := os.ReadDir(dir)
	var files []string
	for _, e := range ents {
		files = append(files, e.Name())
	}
	sort.Strings(files)
	if len(files) != len(list) {
		t.Fatalf("disk has %d archives, list has %d", len(files), len(list))
	}
}

// newTestRecorder arms a recorder with fast intervals into a temp dir.
func newTestRecorder(t *testing.T, opts FlightOptions) *FlightRecorder {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	if opts.EvalInterval == 0 {
		opts.EvalInterval = 5 * time.Millisecond
	}
	if opts.CPUProfile == 0 {
		opts.CPUProfile = -1 // skip the 2s sleep in unit tests
	}
	if opts.MinEvents == 0 {
		opts.MinEvents = 5
	}
	fr, err := NewFlightRecorder(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fr.Close)
	return fr
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestFlightRecorderBurnTriggerCapturesOneBundle(t *testing.T) {
	reg := NewRegistry()
	fr := newTestRecorder(t, FlightOptions{
		Registry: reg,
		Objectives: []Objective{
			{Name: "latency_p99", Kind: ObjectiveLatency, Target: 0.99, LatencyBound: 10 * time.Millisecond},
		},
		Debounce: time.Hour, // anything after the first capture is debounced
		// Disable the spike detector's influence: sustain high.
		SpikeSustain: 1 << 20,
	})
	// Every request blows the bound: burn = 100x.
	for i := 0; i < 50; i++ {
		fr.ObserveQuery(QueryOutcome{Latency: 100 * time.Millisecond})
	}
	waitFor(t, "burn-rate bundle", func() bool { return len(fr.Bundles()) >= 1 })
	// Keep observing: the breach persists but stays edge-triggered + debounced.
	for i := 0; i < 50; i++ {
		fr.ObserveQuery(QueryOutcome{Latency: 100 * time.Millisecond})
	}
	time.Sleep(50 * time.Millisecond)
	if n := len(fr.Bundles()); n != 1 {
		t.Fatalf("got %d bundles, want exactly 1 (debounced)", n)
	}
	bundles := fr.Bundles()
	if bundles[0].Trigger != TriggerBurnRate {
		t.Fatalf("bundle trigger = %s, want %s", bundles[0].Trigger, TriggerBurnRate)
	}
	st := fr.Status()
	if !st.Armed || len(st.Triggers) == 0 {
		t.Fatalf("status = %+v", st)
	}
	// The ceps_slo_* and ceps_flight_* families render and validate.
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"ceps_slo_burn_rate", "ceps_slo_good_ratio", "ceps_slo_breaches_total", "ceps_flight_triggers_total", "ceps_flight_bundles_total", "ceps_flight_bundle_bytes"} {
		if !strings.Contains(buf.String(), fam) {
			t.Fatalf("exposition missing %s", fam)
		}
	}
}

func TestFlightRecorderBreakerHookAndManual(t *testing.T) {
	fr := newTestRecorder(t, FlightOptions{Debounce: time.Hour})
	fr.NoteBreakerState("closed", "half_open") // not open: no trigger
	fr.NoteBreakerState("half_open", "open")
	waitFor(t, "breaker bundle", func() bool { return len(fr.Bundles()) == 1 })
	if fr.Bundles()[0].Trigger != TriggerBreakerOpen {
		t.Fatalf("trigger = %s", fr.Bundles()[0].Trigger)
	}
	// Manual capture bypasses the debounce.
	info, err := fr.TriggerManual("because")
	if err != nil {
		t.Fatal(err)
	}
	if info.Trigger != TriggerManual || info.Detail != "because" {
		t.Fatalf("manual info = %+v", info)
	}
	if len(fr.Bundles()) != 2 {
		t.Fatalf("got %d bundles, want 2", len(fr.Bundles()))
	}
}

func TestFlightRecorderShedSurge(t *testing.T) {
	// shed_rate with NoBurnAlert isolates the surge detector: otherwise
	// the burn-rate detector wins the debounce race on the same evidence.
	fr := newTestRecorder(t, FlightOptions{
		Debounce:   time.Hour,
		MinEvents:  5,
		Objectives: []Objective{{Name: "shed_rate", Kind: ObjectiveShedRate, Target: 0.99, NoBurnAlert: true}},
	})
	for i := 0; i < 20; i++ {
		fr.ObserveQuery(QueryOutcome{Shed: true})
	}
	waitFor(t, "shed-surge bundle", func() bool { return len(fr.Bundles()) == 1 })
	if fr.Bundles()[0].Trigger != TriggerShedSurge {
		t.Fatalf("trigger = %s", fr.Bundles()[0].Trigger)
	}
}

func TestNilFlightRecorderNoOps(t *testing.T) {
	var fr *FlightRecorder
	fr.ObserveQuery(QueryOutcome{Latency: time.Second, Err: true})
	fr.NoteBreakerState("closed", "open")
	fr.Close()
	if st := fr.Status(); st.Armed {
		t.Fatal("nil recorder reports armed")
	}
	if b := fr.Bundles(); b != nil {
		t.Fatal("nil recorder lists bundles")
	}
	if _, ok := fr.BundlePath("x"); ok {
		t.Fatal("nil recorder resolves paths")
	}
	if _, err := fr.TriggerManual(""); err == nil {
		t.Fatal("nil recorder must refuse manual capture")
	}
}

func TestFlightHandlersAndDashboard(t *testing.T) {
	reg := NewRegistry()
	fr := newTestRecorder(t, FlightOptions{Registry: reg, Debounce: time.Hour})
	mux := AdminMux(reg, WithFlightRecorder(fr), WithBuildInfo("v-test"))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// /healthz carries the version but stays ok-prefixed.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.HasPrefix(string(body), "ok") || !strings.Contains(string(body), "v-test") {
		t.Fatalf("healthz = %q", body)
	}

	// /debug/slo returns the status document.
	resp, err = http.Get(srv.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	var st FlightStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !st.Armed || len(st.Objectives) == 0 {
		t.Fatalf("slo status = %+v", st)
	}

	// Manual trigger over HTTP requires POST...
	resp, err = http.Get(srv.URL + "/debug/flight?trigger=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET trigger status = %d", resp.StatusCode)
	}
	// ...and POST captures a bundle.
	resp, err = http.Post(srv.URL+"/debug/flight?trigger=1&reason=smoke", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var info BundleInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || info.ID == "" {
		t.Fatalf("trigger status=%d info=%+v", resp.StatusCode, info)
	}

	// The listing shows it; fetching streams a readable tar.gz.
	resp, err = http.Get(srv.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	var list []BundleInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != info.ID {
		t.Fatalf("list = %+v", list)
	}
	resp, err = http.Get(srv.URL + "/debug/flight?id=" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/gzip" {
		t.Fatalf("fetch content-type = %q", ct)
	}
	gz, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	hdr, err := tar.NewReader(gz).Next()
	if err != nil || hdr.Name != "index.json" {
		t.Fatalf("streamed archive first member = %v err=%v", hdr, err)
	}
	// Unknown id: JSON 404.
	resp, err = http.Get(srv.URL + "/debug/flight?id=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id status = %d", resp.StatusCode)
	}

	// The dashboard renders and references its data endpoint.
	resp, err = http.Get(srv.URL + "/debug/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(page), "/debug/slo") || !strings.Contains(string(page), "objectives") {
		t.Fatal("dashboard page missing expected content")
	}
}

// TestSlowQueryEntryFieldSet pins the complete slow-log JSON contract: a
// fully-populated entry must marshal to exactly this key set, and the
// always-present fields must appear even on a zero-ish entry.
func TestSlowQueryEntryFieldSet(t *testing.T) {
	full := SlowQueryEntry{
		Time:           time.Now(),
		Queries:        []int{1, 2},
		Path:           "fast",
		ElapsedMS:      12.5,
		PartitionMS:    1,
		SolveMS:        2,
		CombineMS:      3,
		ExtractMS:      4,
		CacheHits:      5,
		CacheMisses:    6,
		ArtifactHits:   2,
		Fallback:       "degenerate_partition",
		Degraded:       "relaxed_tol",
		DegradedReason: "queue_pressure",
		Shed:           "queue_full",
		TraceID:        "0123456789abcdef",
		SolveKernel:    "blocked",
		SolveSweeps:    40,
		Error:          "boom",
	}
	b, err := json.Marshal(full)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"ts", "queries", "path", "elapsed_ms",
		"partition_ms", "solve_ms", "combine_ms", "extract_ms",
		"cache_hits", "cache_misses", "artifact_hits",
		"fallback", "degraded", "degraded_reason", "shed",
		"trace_id", "solve_kernel", "solve_sweeps", "error",
	}
	var got []string
	for k := range m {
		got = append(got, k)
	}
	sort.Strings(got)
	wantSorted := append([]string(nil), want...)
	sort.Strings(wantSorted)
	if strings.Join(got, ",") != strings.Join(wantSorted, ",") {
		t.Fatalf("slow-log field set drifted:\n got %v\nwant %v", got, wantSorted)
	}
	// Minimal entry: artifact_hits has no omitempty — zero still serializes.
	min, err := json.Marshal(SlowQueryEntry{Time: time.Now(), Queries: []int{1}, Path: "full"})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"artifact_hits", "cache_hits", "cache_misses", "solve_sweeps"} {
		if !strings.Contains(string(min), `"`+key+`"`) {
			t.Fatalf("minimal entry missing always-present %q: %s", key, min)
		}
	}
}
