// Package obs is the stdlib-only observability layer of the serving
// system: a small metrics registry (atomic counters, gauges, and
// fixed-bucket latency histograms) with a Prometheus-text-format encoder,
// an admin HTTP mux (/metrics, /healthz, /debug/vars, pprof), and a
// structured slow-query log.
//
// The registry is deliberately tiny compared to a real client library: no
// dynamic label cardinality (labels are fixed at registration), no summary
// quantiles (fixed-bucket histograms aggregate correctly across scrapes
// and shards, which is what the later scaling PRs need), and no push
// support. Everything on the hot path is a single atomic op.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one constant name/value pair attached to a metric at
// registration time. Metrics sharing a name but differing in labels form
// one exposition family (one HELP/TYPE header, many sample lines).
type Label struct {
	Name, Value string
}

// metricKind discriminates the exposition TYPE of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// sampler is anything a family can hold: it knows its labels and renders
// its sample lines.
type sampler interface {
	labelSet() []Label
}

// family groups every metric registered under one name.
type family struct {
	name    string
	help    string
	kind    metricKind
	metrics []sampler // registration order
}

// Registry holds metric families and encodes them in Prometheus text
// exposition format. All methods are safe for concurrent use; metric
// updates (Inc/Add/Set/Observe) never take the registry lock.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // family registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register adds m under name, creating the family on first use. It is
// get-or-create on (name, labels): registering the same name+labels twice
// returns the existing metric, and a kind clash panics (programmer error,
// caught by any test touching the path).
func (r *Registry) register(name, help string, kind metricKind, m sampler) sampler {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %v and %v", name, f.kind, kind))
	}
	for _, existing := range f.metrics {
		if sameLabels(existing.labelSet(), m.labelSet()) {
			return existing
		}
	}
	f.metrics = append(f.metrics, m)
	return m
}

func sameLabels(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter is a monotonically increasing event count.
type Counter struct {
	labels []Label
	v      atomic.Uint64
}

func (c *Counter) labelSet() []Label { return c.labels }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n events.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter returns (registering on first use) the counter for name+labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, kindCounter, &Counter{labels: labels}).(*Counter)
}

// counterFunc exposes a read-only view of an externally maintained
// monotonic count (e.g. cache hit totals owned by the cache itself).
type counterFunc struct {
	labels []Label
	fn     func() float64
}

func (c *counterFunc) labelSet() []Label { return c.labels }

// CounterFunc registers a counter whose value is read from fn at encode
// time. fn must be monotonic and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindCounter, &counterFunc{labels: labels, fn: fn})
}

// Gauge is a value that can go up and down.
type Gauge struct {
	labels []Label
	bits   atomic.Uint64 // math.Float64bits
}

func (g *Gauge) labelSet() []Label { return g.labels }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by d (negative d decrements).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge returns (registering on first use) the gauge for name+labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, kindGauge, &Gauge{labels: labels}).(*Gauge)
}

// gaugeFunc exposes a read-only view of externally maintained state.
type gaugeFunc struct {
	labels []Label
	fn     func() float64
}

func (g *gaugeFunc) labelSet() []Label { return g.labels }

// GaugeFunc registers a gauge whose value is read from fn at encode time.
// fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, &gaugeFunc{labels: labels, fn: fn})
}

// Histogram is a fixed-bucket latency/size distribution. Buckets are upper
// bounds (le semantics); an implicit +Inf bucket catches the tail.
// Observe is two atomic ops (bucket count + sum) and never allocates.
type Histogram struct {
	labels  []Label
	upper   []float64       // sorted ascending, +Inf excluded
	counts  []atomic.Uint64 // len(upper)+1; last is +Inf
	sumBits atomic.Uint64   // math.Float64bits of the running sum
}

func (h *Histogram) labelSet() []Label { return h.labels }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound admits v (le: v <= upper[i]).
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// snapshot returns cumulative bucket counts (aligned with upper, +Inf
// last), the total count, and the sum. Counts are read in bucket order
// after the sum, so a concurrent Observe can at worst surface as a sum
// without its bucket yet — each individual read is atomic and the encoded
// cumulative series is always monotone.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	sum = math.Float64frombits(h.sumBits.Load())
	cum = make([]uint64, len(h.counts))
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, running, sum
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	_, n, _ := h.snapshot()
	return n
}

// Sum returns the sum of observed values so far.
func (h *Histogram) Sum() float64 {
	_, _, s := h.snapshot()
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket
// cumulative counts with linear interpolation inside the winning bucket.
// Edge cases are pinned — the resilience layer's retry budgeting consumes
// this under exactly the cold-start conditions that hit them: with no
// observations it returns 0; q outside [0,1] (including NaN) clamps to the
// nearest endpoint; when the quantile lands in the +Inf overflow bucket it
// returns the largest finite bound (a deliberate underestimate — good
// enough for admission budgeting, which only needs scale), or 0 when the
// histogram has no finite bound at all. It never panics.
func (h *Histogram) Quantile(q float64) float64 {
	cum, count, _ := h.snapshot()
	if count == 0 {
		return 0
	}
	// NaN fails both comparisons; treat it like q = 1 (the conservative
	// end for a latency budget) rather than letting it select no bucket.
	if q < 0 {
		q = 0
	} else if q > 1 || math.IsNaN(q) {
		q = 1
	}
	// All bounds can be +Inf at registration time (they dedup/strip to an
	// empty finite list, leaving only the overflow bucket); there is no
	// finite bound to report.
	if len(h.upper) == 0 {
		return 0
	}
	rank := q * float64(count)
	for i, c := range cum {
		if float64(c) < rank {
			continue
		}
		if i >= len(h.upper) {
			return h.upper[len(h.upper)-1] // +Inf tail
		}
		lo, loCum := 0.0, uint64(0)
		if i > 0 {
			lo, loCum = h.upper[i-1], cum[i-1]
		}
		inBucket := float64(c - loCum)
		if inBucket <= 0 {
			return h.upper[i]
		}
		return lo + (h.upper[i]-lo)*(rank-float64(loCum))/inBucket
	}
	return h.upper[len(h.upper)-1]
}

// Histogram returns (registering on first use) the histogram for
// name+labels with the given upper bounds. Bounds are sorted and
// deduplicated; +Inf is implicit. An empty bucket list panics.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if len(buckets) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	upper := append([]float64(nil), buckets...)
	sort.Float64s(upper)
	dedup := upper[:1]
	for _, b := range upper[1:] {
		if b != dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	if math.IsInf(dedup[len(dedup)-1], +1) {
		dedup = dedup[:len(dedup)-1] // +Inf is implicit
	}
	h := &Histogram{labels: labels, upper: dedup, counts: make([]atomic.Uint64, len(dedup)+1)}
	return r.register(name, help, kindHistogram, h).(*Histogram)
}

// DurationBuckets is a general-purpose latency bucket ladder in seconds,
// spanning 100µs to 10s — wide enough for both a warm cache hit on a small
// union and a cold full-graph solve.
func DurationBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}
