package obs

import (
	"math"
	"sync"
	"time"
)

// This file is the anomaly detector + trigger pipeline of the flight
// recorder. Five detectors watch the live SLO aggregates and the latency
// stream; each can fire a Trigger, which the debouncer turns into at most
// one diagnostic-bundle capture per cooldown window. Suppressed triggers
// are still recorded (with Suppressed=true) so the dashboard shows the
// whole incident, not just the capture that snapshotted it.

// Trigger kinds. The strings are metric-label and index.json contract.
const (
	TriggerBurnRate        = "burn_rate"
	TriggerLatencySpike    = "latency_spike"
	TriggerShedSurge       = "shed_surge"
	TriggerHitRateCollapse = "hit_rate_collapse"
	TriggerBreakerOpen     = "breaker_open"
	TriggerManual          = "manual"
)

// TriggerKinds lists every trigger kind (for metric registration and
// exhaustive tests).
func TriggerKinds() []string {
	return []string{TriggerBurnRate, TriggerLatencySpike, TriggerShedSurge,
		TriggerHitRateCollapse, TriggerBreakerOpen, TriggerManual}
}

// Trigger is one detected anomaly.
type Trigger struct {
	// Kind is one of the Trigger* constants.
	Kind string `json:"kind"`
	// Objective names the SLO that breached, when one did.
	Objective string `json:"objective,omitempty"`
	// Detail is a one-line human description of the evidence.
	Detail string `json:"detail"`
	// Evidence carries the detector's numbers at fire time (burn rates,
	// ratios, EWMA state) for the bundle's evidence.json.
	Evidence map[string]float64 `json:"evidence,omitempty"`
	// Time is when the detector fired.
	Time time.Time `json:"time"`
}

// TriggerRecord is a Trigger plus its debounce verdict and, when a bundle
// was captured, the bundle id.
type TriggerRecord struct {
	Trigger
	// Suppressed reports the trigger fell inside the debounce cooldown and
	// captured nothing.
	Suppressed bool `json:"suppressed"`
	// BundleID is the captured bundle's id, "" when suppressed or capture
	// failed.
	BundleID string `json:"bundle_id,omitempty"`
	// Error is the capture failure, "" otherwise.
	Error string `json:"error,omitempty"`
}

// spikeDetector flags latency spikes with an EWMA center and an EWMA of
// absolute deviations (a streaming MAD stand-in): a sample is spiky when
// it exceeds ewma + k·mad, and the detector fires after sustain
// consecutive spiky samples — one slow query is an outlier, a run of them
// is an anomaly. Sheds and sub-warmup streams never fire.
type spikeDetector struct {
	mu      sync.Mutex
	alpha   float64 // smoothing factor
	k       float64 // deviation multiplier
	sustain int     // consecutive spiky samples to fire
	warmup  int     // samples before spikes are considered

	n      int
	ewma   float64 // seconds
	mad    float64 // seconds
	streak int
}

func newSpikeDetector(k float64, sustain int) *spikeDetector {
	if k <= 0 {
		k = 8
	}
	if sustain <= 0 {
		sustain = 5
	}
	return &spikeDetector{alpha: 0.05, k: k, sustain: sustain, warmup: 30}
}

// observe feeds one latency sample and reports whether the spike trigger
// fires on it (the streak resets on fire, so a sustained plateau fires
// once per sustain-length run, not on every sample).
func (d *spikeDetector) observe(latency time.Duration) (fire bool, evidence map[string]float64) {
	x := latency.Seconds()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.n == 0 {
		d.ewma, d.mad = x, 0
	}
	d.n++
	dev := math.Abs(x - d.ewma)
	spiky := d.n > d.warmup && x > d.ewma+d.k*math.Max(d.mad, 1e-6)
	// The baseline only learns from non-spiky samples: a run of huge
	// outliers should fire the detector, not drag the center and spread up
	// until the run looks normal mid-streak.
	if !spiky {
		d.mad += d.alpha * (dev - d.mad)
		d.ewma += d.alpha * (x - d.ewma)
	}
	if !spiky {
		d.streak = 0
		return false, nil
	}
	d.streak++
	if d.streak < d.sustain {
		return false, nil
	}
	d.streak = 0
	return true, map[string]float64{
		"latency_ms": x * 1e3,
		"ewma_ms":    d.ewma * 1e3,
		"mad_ms":     d.mad * 1e3,
		"k":          d.k,
		"sustain":    float64(d.sustain),
	}
}

// debouncer turns triggers into capture decisions: at most one capture per
// cooldown, globally across kinds — a single incident (a latency spike
// that also breaches the burn rate and opens the breaker) should produce
// one bundle, not three.
type debouncer struct {
	mu       sync.Mutex
	cooldown time.Duration
	last     time.Time
}

func newDebouncer(cooldown time.Duration) *debouncer {
	if cooldown <= 0 {
		cooldown = 2 * time.Minute
	}
	return &debouncer{cooldown: cooldown}
}

// allow reports whether a capture may run now, and reserves the slot when
// it may.
func (d *debouncer) allow(now time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.last.IsZero() && now.Sub(d.last) < d.cooldown {
		return false
	}
	d.last = now
	return true
}

// triggerRing retains the newest triggers for /debug/slo and the
// dashboard.
type triggerRing struct {
	mu   sync.Mutex
	buf  []TriggerRecord
	next int
	n    int
}

func newTriggerRing(capacity int) *triggerRing {
	if capacity <= 0 {
		capacity = 64
	}
	return &triggerRing{buf: make([]TriggerRecord, capacity)}
}

func (r *triggerRing) add(t TriggerRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// list returns the retained triggers, newest first.
func (r *triggerRing) list() []TriggerRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TriggerRecord, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}
