package obs

import (
	"math"
	"testing"
)

// TestHistogramQuantileEdgeCases pins the behavior the resilience layer's
// retry budgeting relies on under cold-start conditions: empty histograms,
// q outside [0,1], NaN q, and distributions whose mass sits entirely in
// the implicit +Inf overflow bucket must all produce a finite number —
// never a panic, never NaN.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_q_edge", "test", []float64{0.1, 1, 10})

	// Empty histogram: every quantile is 0.
	for _, q := range []float64{-1, 0, 0.5, 1, 2, math.NaN()} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}

	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	// q clamps to [0,1]; out-of-range requests answer like the endpoints.
	if got, want := h.Quantile(-3), h.Quantile(0); got != want {
		t.Errorf("Quantile(-3) = %v, want clamp to Quantile(0) = %v", got, want)
	}
	if got, want := h.Quantile(7), h.Quantile(1); got != want {
		t.Errorf("Quantile(7) = %v, want clamp to Quantile(1) = %v", got, want)
	}
	// NaN clamps to the conservative end (q = 1) instead of falling
	// through the bucket scan.
	if got, want := h.Quantile(math.NaN()), h.Quantile(1); got != want || math.IsNaN(got) {
		t.Errorf("Quantile(NaN) = %v, want %v", got, want)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
		got := h.Quantile(q)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("Quantile(%v) = %v, want finite", q, got)
		}
	}
}

// TestHistogramQuantileOverflowMass pins the all-mass-in-overflow case:
// every observation beyond the largest finite bound reports that bound (a
// deliberate underestimate with the right scale), not +Inf.
func TestHistogramQuantileOverflowMass(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_q_overflow", "test", []float64{0.1, 1})
	for i := 0; i < 10; i++ {
		h.Observe(100) // all land in the implicit +Inf bucket
	}
	for _, q := range []float64{0.1, 0.5, 1} {
		if got := h.Quantile(q); got != 1 {
			t.Errorf("overflow-only Quantile(%v) = %v, want largest finite bound 1", q, got)
		}
	}
	// q = 0 is degenerate (rank 0 precedes all mass): it reports the first
	// bucket bound, which is still finite — pin that too.
	if got := h.Quantile(0); got != 0.1 {
		t.Errorf("overflow-only Quantile(0) = %v, want first bound 0.1", got)
	}
}

// TestHistogramQuantileOnlyInfBuckets covers a histogram registered with
// only +Inf bounds: dedup strips them (the overflow bucket is implicit),
// leaving no finite bound at all. Quantile must return 0, not index out of
// range.
func TestHistogramQuantileOnlyInfBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_q_inf", "test", []float64{math.Inf(+1)})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("no-finite-bound Quantile(0.5) = %v on empty histogram, want 0", got)
	}
	h.Observe(3)
	h.Observe(4)
	if got := h.Quantile(0.9); got != 0 {
		t.Errorf("no-finite-bound Quantile(0.9) = %v, want 0 (no finite bound to report)", got)
	}
	if got := h.Sum(); got != 7 {
		t.Errorf("Sum() = %v, want 7", got)
	}
}
