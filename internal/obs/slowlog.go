package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SlowQueryEntry is one line of the slow-query log: everything needed to
// understand why a single query was slow without re-running it — which
// path answered it, where the time went stage by stage, and how the cache
// treated its sources. Field names are stable; dashboards parse them.
type SlowQueryEntry struct {
	// Time is when the query finished.
	Time time.Time `json:"ts"`
	// Queries is the query node set.
	Queries []int `json:"queries"`
	// Path is the execution path: "full", "fast", or "fast_fallback"
	// (matching the path label of ceps_queries_total).
	Path string `json:"path"`
	// ElapsedMS is the total response time in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms"`
	// PartitionMS/SolveMS/CombineMS/ExtractMS attribute the response time
	// to the pipeline stages (Fast CePS union prep, Step 1, Step 2, Step 3).
	PartitionMS float64 `json:"partition_ms,omitempty"`
	SolveMS     float64 `json:"solve_ms"`
	CombineMS   float64 `json:"combine_ms"`
	ExtractMS   float64 `json:"extract_ms"`
	// CacheHits/CacheMisses count this query's sources served from the
	// score cache (or a joined in-flight solve) vs. solved fresh.
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// ArtifactHits counts the misses answered by a precomputed artifact
	// row read instead of an iterative solve (subset of CacheMisses).
	// Always emitted (no omitempty): dashboards difference it against
	// cache_misses, and an absent field is indistinguishable from zero.
	ArtifactHits int `json:"artifact_hits"`
	// Fallback is the degradation reason when Path is "fast_fallback".
	Fallback string `json:"fallback,omitempty"`
	// Degraded is the fidelity-reduction mode ("relaxed_tol",
	// "full_graph_fallback") when the answer was degraded.
	Degraded string `json:"degraded,omitempty"`
	// DegradedReason is the load condition that caused the degradation
	// ("queue_pressure", "breaker_open"), distinct from Degraded which
	// names the mode.
	DegradedReason string `json:"degraded_reason,omitempty"`
	// Shed is the shed reason ("queue_full", "queue_timeout",
	// "breaker_open", "coalesce_wait") when the request was load-shed
	// before reaching the pipeline.
	Shed string `json:"shed,omitempty"`
	// TraceID links the entry to its retained trace in /debug/traces?id=
	// (empty when tracing is off or the trace was not sampled).
	TraceID string `json:"trace_id,omitempty"`
	// SolveKernel and SolveSweeps summarize Step 1: which kernel answered
	// ("blocked" or "scalar") and the total power-iteration sweeps across
	// the query's sources (0 when every source was a cache hit).
	SolveKernel string `json:"solve_kernel,omitempty"`
	SolveSweeps int    `json:"solve_sweeps"`
	// Error is set when the query failed (failures slower than the
	// threshold are logged too — a timeout is the slowest query there is).
	Error string `json:"error,omitempty"`
}

// SlowLog writes one JSON line per query whose response time crosses a
// threshold. It is safe for concurrent use; a nil *SlowLog is a valid
// no-op receiver, so callers thread it unconditionally.
type SlowLog struct {
	mu        sync.Mutex
	w         io.Writer
	threshold time.Duration
	logged    uint64
}

// NewSlowLog returns a log writing entries over threshold to w.
// threshold <= 0 logs every query (useful in tests and trace sessions).
func NewSlowLog(w io.Writer, threshold time.Duration) *SlowLog {
	return &SlowLog{w: w, threshold: threshold}
}

// Threshold returns the configured threshold.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Logged returns how many entries have been written.
func (l *SlowLog) Logged() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.logged
}

// Record writes e as one JSON line if its elapsed time crosses the
// threshold, and reports whether it did. Encoding failures are swallowed:
// the slow-query log is diagnostics, never a reason to fail a query.
func (l *SlowLog) Record(e SlowQueryEntry) bool {
	if l == nil {
		return false
	}
	if time.Duration(e.ElapsedMS*float64(time.Millisecond)) < l.threshold {
		return false
	}
	line, err := json.Marshal(e)
	if err != nil {
		return false
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.w.Write(line); err != nil {
		return false
	}
	l.logged++
	return true
}
