package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the flight recorder itself: the orchestrator that joins the
// SLO tracker (slo.go), the anomaly detectors (anomaly.go), and the bundle
// store (bundle.go) behind one nil-safe handle the engine arms with
// WithFlightRecorder. A background evaluator ticks the detectors, keeps a
// short history ring for dashboard sparklines, and mirrors the live SLO
// state into ceps_slo_* / ceps_flight_* metrics.

// TrackedHistogram names one registry histogram whose windowed p50/p99 the
// recorder samples into the dashboard history (stage latencies, total
// duration).
type TrackedHistogram struct {
	Name string
	H    *Histogram
}

// FlightOptions configures a FlightRecorder. The zero value of every field
// picks a production default; only Dir is required.
type FlightOptions struct {
	// Dir is where bundles are written (created if missing). Required.
	Dir string
	// DiskBudgetBytes bounds the bundle directory; oldest bundles are
	// evicted past it. Default 256 MiB.
	DiskBudgetBytes int64
	// CPUProfile is how long a bundle's CPU profile samples for. Default
	// 2s; negative disables the CPU profile.
	CPUProfile time.Duration
	// TraceCount is how many kept traces a bundle includes. Default 32.
	TraceCount int
	// Objectives to track; default DefaultObjectives().
	Objectives []Objective
	// EvalInterval is the detector tick. Default 1s.
	EvalInterval time.Duration
	// Debounce is the global capture cooldown across all trigger kinds.
	// Default 2m.
	Debounce time.Duration
	// FastBurn/SlowBurn are the 1m/5m burn-rate breach thresholds.
	// Defaults 14.4 and 6.
	FastBurn, SlowBurn float64
	// MinEvents guards cold windows from alerting. Default 20.
	MinEvents int
	// SpikeK and SpikeSustain tune the EWMA+MAD latency-spike detector
	// (fire after SpikeSustain consecutive samples above ewma+K·mad).
	// Defaults 8 and 5.
	SpikeK       float64
	SpikeSustain int
	// ShedSurgeRatio is the 1m shed fraction that fires the shed-surge
	// detector. Default 0.10.
	ShedSurgeRatio float64
	// HitCollapseDelta fires the hit-rate-collapse detector when the 1m
	// cache hit ratio drops this far below the 1h baseline. Default 0.30.
	HitCollapseDelta float64

	// Registry, when set, gets the ceps_slo_* / ceps_flight_* families and
	// is snapshotted into each bundle's metrics.prom.
	Registry *Registry
	// Traces, when set, supplies each bundle's traces.json.
	Traces *TraceStore
	// Stats are named subsystem snapshots for each bundle's stats.json.
	Stats []StatSource
	// Histograms are sampled into the dashboard history ring.
	Histograms []TrackedHistogram
	// Logf, when set, receives capture failures (default: dropped).
	Logf func(format string, args ...any)
}

func (o *FlightOptions) withDefaults() {
	if o.DiskBudgetBytes <= 0 {
		o.DiskBudgetBytes = 256 << 20
	}
	if o.CPUProfile == 0 {
		o.CPUProfile = 2 * time.Second
	}
	if o.TraceCount <= 0 {
		o.TraceCount = 32
	}
	if len(o.Objectives) == 0 {
		o.Objectives = DefaultObjectives()
	}
	if o.EvalInterval <= 0 {
		o.EvalInterval = time.Second
	}
	if o.Debounce <= 0 {
		o.Debounce = 2 * time.Minute
	}
	if o.ShedSurgeRatio <= 0 {
		o.ShedSurgeRatio = 0.10
	}
	if o.HitCollapseDelta <= 0 {
		o.HitCollapseDelta = 0.30
	}
}

// HistoryPoint is one evaluator tick's dashboard sample: windowed
// histogram quantiles and per-objective 1m ratios, keyed by series name.
type HistoryPoint struct {
	UnixMS int64              `json:"unix_ms"`
	Series map[string]float64 `json:"series"`
}

// FlightStatus is the /debug/slo JSON document. Field names are an
// operator contract.
type FlightStatus struct {
	Armed             bool              `json:"armed"`
	FastBurnThreshold float64           `json:"fast_burn_threshold"`
	SlowBurnThreshold float64           `json:"slow_burn_threshold"`
	Objectives        []ObjectiveStatus `json:"objectives"`
	Triggers          []TriggerRecord   `json:"triggers"`
	Bundles           []BundleInfo      `json:"bundles"`
	History           []HistoryPoint    `json:"history"`
	BundleBytes       int64             `json:"bundle_bytes"`
	BundleBudget      int64             `json:"bundle_budget"`
	CaptureInProgress bool              `json:"capture_in_progress"`
}

// histTrack carries one tracked histogram's previous snapshot for
// delta-windowed quantiles.
type histTrack struct {
	name    string
	h       *Histogram
	prevCum []uint64
}

// FlightRecorder is the armed flight recorder. All methods are safe for
// concurrent use and safe on a nil receiver (the disarmed engine's
// no-op), matching the tracer and slow-log conventions.
type FlightRecorder struct {
	opts  FlightOptions
	slo   *SLOTracker
	spike *spikeDetector
	deb   *debouncer
	ring  *triggerRing
	store *bundleStore

	lastStatus atomic.Value // []ObjectiveStatus, refreshed each tick
	capturing  atomic.Bool
	breakerSig chan Trigger // breaker-open hook → evaluator

	histMu sync.Mutex
	hists  []*histTrack
	histLo int // history ring state
	histN  int
	histBuf []HistoryPoint

	// edge-trigger state, owned by the evaluator goroutine
	breached map[string]bool
	surging  bool
	collapsed bool

	breachCtr  map[string]*Counter
	triggerCtr map[string]*Counter
	bundleCtr  map[string]*Counter

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewFlightRecorder builds and starts a recorder: the bundle directory is
// created/scanned, metrics registered, and the detector evaluator
// goroutine started. Close stops it.
func NewFlightRecorder(opts FlightOptions) (*FlightRecorder, error) {
	opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("flight: FlightOptions.Dir is required")
	}
	slo, err := NewSLOTracker(opts.Objectives, opts.FastBurn, opts.SlowBurn, opts.MinEvents)
	if err != nil {
		return nil, err
	}
	store, err := newBundleStore(opts.Dir, opts.DiskBudgetBytes)
	if err != nil {
		return nil, err
	}
	fr := &FlightRecorder{
		opts:       opts,
		slo:        slo,
		spike:      newSpikeDetector(opts.SpikeK, opts.SpikeSustain),
		deb:        newDebouncer(opts.Debounce),
		ring:       newTriggerRing(64),
		store:      store,
		breakerSig: make(chan Trigger, 4),
		histBuf:    make([]HistoryPoint, 120),
		breached:   make(map[string]bool),
		breachCtr:  make(map[string]*Counter),
		triggerCtr: make(map[string]*Counter),
		bundleCtr:  make(map[string]*Counter),
		stop:       make(chan struct{}),
	}
	for _, th := range opts.Histograms {
		if th.H == nil {
			continue
		}
		fr.hists = append(fr.hists, &histTrack{name: th.Name, h: th.H})
	}
	fr.lastStatus.Store(slo.Status())
	fr.registerMetrics()
	fr.wg.Add(1)
	go fr.evaluator()
	return fr, nil
}

// registerMetrics mirrors the tracker and bundle store into the registry.
// Gauge funcs read the evaluator's last snapshot, not the tracker, so a
// scrape never contends with the hot-path Observe mutex.
func (fr *FlightRecorder) registerMetrics() {
	reg := fr.opts.Registry
	if reg == nil {
		return
	}
	for _, o := range fr.opts.Objectives {
		name := o.Name
		for wi, spec := range sloWindowSpec {
			wi, window := wi, spec.name
			reg.GaugeFunc("ceps_slo_burn_rate",
				"Error-budget burn rate per objective and window (1.0 = sustainable).",
				func() float64 { return fr.statusField(name, wi, true) },
				Label{"objective", name}, Label{"window", window})
			reg.GaugeFunc("ceps_slo_good_ratio",
				"Good-event fraction per objective and window.",
				func() float64 { return fr.statusField(name, wi, false) },
				Label{"objective", name}, Label{"window", window})
		}
		fr.breachCtr[name] = reg.Counter("ceps_slo_breaches_total",
			"Burn-rate breach triggers per objective.", Label{"objective", name})
	}
	for _, kind := range TriggerKinds() {
		fr.triggerCtr[kind] = reg.Counter("ceps_flight_triggers_total",
			"Anomaly triggers fired (including debounced), by kind.", Label{"kind", kind})
		fr.bundleCtr[kind] = reg.Counter("ceps_flight_bundles_total",
			"Diagnostic bundles captured, by trigger kind.", Label{"trigger", kind})
	}
	reg.GaugeFunc("ceps_flight_bundle_bytes",
		"Total bytes of retained diagnostic bundles.",
		func() float64 { return float64(fr.store.totalBytes()) })
}

// statusField reads one objective/window burn rate (burn=true) or good
// ratio from the last evaluator snapshot.
func (fr *FlightRecorder) statusField(objective string, window int, burn bool) float64 {
	sts, _ := fr.lastStatus.Load().([]ObjectiveStatus)
	for _, st := range sts {
		if st.Name != objective || window >= len(st.Windows) {
			continue
		}
		if burn {
			return st.Windows[window].BurnRate
		}
		return st.Windows[window].GoodRatio
	}
	return 0
}

// ObserveQuery folds one finished request into the SLO windows and the
// latency-spike detector. This is the only hot-path entry point: one
// mutex acquisition in the tracker plus one in the detector.
func (fr *FlightRecorder) ObserveQuery(o QueryOutcome) {
	if fr == nil {
		return
	}
	fr.slo.Observe(o)
	if o.Shed {
		return
	}
	if fire, ev := fr.spike.observe(o.Latency); fire {
		fr.fire(Trigger{
			Kind:     TriggerLatencySpike,
			Detail:   fmt.Sprintf("latency %.1fms above ewma %.1fms + %g·mad", ev["latency_ms"], ev["ewma_ms"], ev["k"]),
			Evidence: ev,
			Time:     time.Now(),
		}, false)
	}
}

// NoteBreakerState is the resilience layer's state-change hook: a
// transition into "open" fires the breaker-open trigger. Called from a
// goroutine the breaker spawns, so it never runs under the breaker mutex.
func (fr *FlightRecorder) NoteBreakerState(from, to string) {
	if fr == nil || to != "open" {
		return
	}
	trig := Trigger{
		Kind:   TriggerBreakerOpen,
		Detail: fmt.Sprintf("circuit breaker %s -> %s", from, to),
		Time:   time.Now(),
	}
	select {
	case fr.breakerSig <- trig:
	default: // evaluator backed up; the open state persists and re-fires
	}
}

// TriggerManual captures a bundle right now, bypassing the debounce (the
// operator asked). It still respects the single-capture guard.
func (fr *FlightRecorder) TriggerManual(detail string) (BundleInfo, error) {
	if fr == nil {
		return BundleInfo{}, fmt.Errorf("flight: recorder not armed")
	}
	if detail == "" {
		detail = "operator-requested capture"
	}
	trig := Trigger{Kind: TriggerManual, Detail: detail, Time: time.Now()}
	if c := fr.triggerCtr[TriggerManual]; c != nil {
		c.Inc()
	}
	if !fr.capturing.CompareAndSwap(false, true) {
		rec := TriggerRecord{Trigger: trig, Suppressed: true, Error: "capture already in progress"}
		fr.ring.add(rec)
		return BundleInfo{}, fmt.Errorf("flight: capture already in progress")
	}
	defer fr.capturing.Store(false)
	return fr.capture(trig)
}

// fire routes one detector trigger through the debounce. async captures
// run on their own goroutine (a capture sleeps for the CPU-profile
// duration; detectors must not stall the evaluator or the hot path).
func (fr *FlightRecorder) fire(trig Trigger, sync bool) {
	if c := fr.triggerCtr[trig.Kind]; c != nil {
		c.Inc()
	}
	if !fr.deb.allow(trig.Time) {
		fr.ring.add(TriggerRecord{Trigger: trig, Suppressed: true})
		return
	}
	if !fr.capturing.CompareAndSwap(false, true) {
		fr.ring.add(TriggerRecord{Trigger: trig, Suppressed: true, Error: "capture already in progress"})
		return
	}
	run := func() {
		defer fr.capturing.Store(false)
		fr.capture(trig)
	}
	if sync {
		run()
		return
	}
	fr.wg.Add(1)
	go func() {
		defer fr.wg.Done()
		run()
	}()
}

// capture builds and writes one bundle, records the outcome in the
// trigger ring, and returns the bundle info. Caller holds the capturing
// flag.
func (fr *FlightRecorder) capture(trig Trigger) (BundleInfo, error) {
	info, entries := captureBundle(trig, trig.Time, fr.opts.CPUProfile, fr.opts.TraceCount,
		fr.opts.Registry, fr.opts.Traces, fr.opts.Stats)
	written, err := fr.store.write(info, entries)
	rec := TriggerRecord{Trigger: trig}
	if err != nil {
		rec.Error = err.Error()
		if fr.opts.Logf != nil {
			fr.opts.Logf("flight: capture failed: %v", err)
		}
	} else {
		rec.BundleID = written.ID
		if c := fr.bundleCtr[trig.Kind]; c != nil {
			c.Inc()
		}
	}
	fr.ring.add(rec)
	return written, err
}

// evaluator is the detector tick loop.
func (fr *FlightRecorder) evaluator() {
	defer fr.wg.Done()
	tick := time.NewTicker(fr.opts.EvalInterval)
	defer tick.Stop()
	for {
		select {
		case <-fr.stop:
			return
		case trig := <-fr.breakerSig:
			fr.fire(trig, false)
		case <-tick.C:
			fr.evalOnce()
		}
	}
}

// evalOnce runs every window-based detector once and appends a history
// point. Runs only on the evaluator goroutine (edge-trigger maps are
// unsynchronized by design).
func (fr *FlightRecorder) evalOnce() {
	now := time.Now()
	status := fr.slo.Status()
	fr.lastStatus.Store(status)

	// Burn-rate breach: edge-triggered per objective, so a breach that
	// persists across ticks fires once, not once per second.
	for _, st := range status {
		was := fr.breached[st.Name]
		fr.breached[st.Name] = st.Breached
		if st.Breached && !was {
			if c := fr.breachCtr[st.Name]; c != nil {
				c.Inc()
			}
			fr.fire(Trigger{
				Kind:      TriggerBurnRate,
				Objective: st.Name,
				Detail: fmt.Sprintf("%s burning budget at %.1fx (1m) / %.1fx (5m)",
					st.Name, st.FastBurn, st.SlowBurn),
				Evidence: map[string]float64{
					"fast_burn": st.FastBurn, "slow_burn": st.SlowBurn, "target": st.Target,
				},
				Time: now,
			}, false)
		}
	}

	// Shed surge: 1m shed fraction over the threshold.
	if ratio, samples, ok := fr.slo.WindowRatio("shed_rate", "1m"); ok {
		shedFrac := 1 - ratio
		surge := samples >= uint64(max(fr.opts.MinEvents, 1)) && shedFrac >= fr.opts.ShedSurgeRatio
		if surge && !fr.surging {
			fr.fire(Trigger{
				Kind:      TriggerShedSurge,
				Objective: "shed_rate",
				Detail:    fmt.Sprintf("%.0f%% of the last minute's requests shed", shedFrac*100),
				Evidence:  map[string]float64{"shed_fraction_1m": shedFrac, "samples_1m": float64(samples)},
				Time:      now,
			}, false)
		}
		fr.surging = surge
	}

	// Hit-rate collapse: the 1m cache hit ratio fell far below the 1h
	// baseline — a purge storm or working-set shift, not a cold start
	// (a cold 1h window can't be high enough to collapse from).
	if r1m, s1m, ok := fr.slo.WindowRatio("cache_hit_rate", "1m"); ok {
		r1h, s1h, _ := fr.slo.WindowRatio("cache_hit_rate", "1h")
		minN := uint64(max(fr.opts.MinEvents, 1))
		collapsed := s1m >= minN && s1h >= minN && r1m < r1h-fr.opts.HitCollapseDelta
		if collapsed && !fr.collapsed {
			fr.fire(Trigger{
				Kind:      TriggerHitRateCollapse,
				Objective: "cache_hit_rate",
				Detail:    fmt.Sprintf("cache hit ratio %.0f%% (1m) vs %.0f%% (1h baseline)", r1m*100, r1h*100),
				Evidence:  map[string]float64{"ratio_1m": r1m, "ratio_1h": r1h, "delta": fr.opts.HitCollapseDelta},
				Time:      now,
			}, false)
		}
		fr.collapsed = collapsed
	}

	fr.appendHistory(now, status)
}

// appendHistory samples one dashboard history point: per-objective 1m
// ratio/burn and per-tracked-histogram p50/p99/qps over the tick window.
func (fr *FlightRecorder) appendHistory(now time.Time, status []ObjectiveStatus) {
	series := make(map[string]float64, 2*len(status)+3*len(fr.hists))
	for _, st := range status {
		if len(st.Windows) > 0 {
			series[st.Name+"_ratio_1m"] = st.Windows[0].GoodRatio
			series[st.Name+"_burn_1m"] = st.Windows[0].BurnRate
		}
	}
	interval := fr.opts.EvalInterval.Seconds()
	fr.histMu.Lock()
	for _, ht := range fr.hists {
		cum, _, _ := ht.h.snapshot()
		delta := make([]uint64, len(cum))
		var n uint64
		for i := range cum {
			var prev uint64
			if ht.prevCum != nil {
				prev = ht.prevCum[i]
			}
			delta[i] = cum[i] - prev
		}
		if len(delta) > 0 {
			n = delta[len(delta)-1]
		}
		ht.prevCum = cum
		series[ht.name+"_qps"] = float64(n) / interval
		if n > 0 {
			series[ht.name+"_p50_ms"] = quantileFromCum(ht.h.upper, delta, 0.50) * 1e3
			series[ht.name+"_p99_ms"] = quantileFromCum(ht.h.upper, delta, 0.99) * 1e3
		}
	}
	pt := HistoryPoint{UnixMS: now.UnixMilli(), Series: series}
	i := (fr.histLo + fr.histN) % len(fr.histBuf)
	fr.histBuf[i] = pt
	if fr.histN < len(fr.histBuf) {
		fr.histN++
	} else {
		fr.histLo = (fr.histLo + 1) % len(fr.histBuf)
	}
	fr.histMu.Unlock()
}

// quantileFromCum estimates a quantile from a cumulative bucket series
// (same interpolation as Histogram.Quantile, over a caller-provided
// window delta instead of the lifetime counts).
func quantileFromCum(upper []float64, cum []uint64, q float64) float64 {
	if len(cum) == 0 || len(upper) == 0 {
		return 0
	}
	count := cum[len(cum)-1]
	if count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(count)
	for i, c := range cum {
		if float64(c) < rank {
			continue
		}
		if i >= len(upper) {
			return upper[len(upper)-1]
		}
		lo, loCum := 0.0, uint64(0)
		if i > 0 {
			lo, loCum = upper[i-1], cum[i-1]
		}
		inBucket := float64(c - loCum)
		if inBucket <= 0 {
			return upper[i]
		}
		return lo + (upper[i]-lo)*(rank-float64(loCum))/inBucket
	}
	return upper[len(upper)-1]
}

// Status assembles the /debug/slo document. A nil recorder reports
// Armed=false with empty collections.
func (fr *FlightRecorder) Status() FlightStatus {
	if fr == nil {
		return FlightStatus{}
	}
	fr.histMu.Lock()
	hist := make([]HistoryPoint, fr.histN)
	for i := 0; i < fr.histN; i++ {
		hist[i] = fr.histBuf[(fr.histLo+i)%len(fr.histBuf)]
	}
	fr.histMu.Unlock()
	return FlightStatus{
		Armed:             true,
		FastBurnThreshold: fr.slo.fastBurn,
		SlowBurnThreshold: fr.slo.slowBurn,
		Objectives:        fr.slo.Status(),
		Triggers:          fr.ring.list(),
		Bundles:           fr.store.list(),
		History:           hist,
		BundleBytes:       fr.store.totalBytes(),
		BundleBudget:      fr.opts.DiskBudgetBytes,
		CaptureInProgress: fr.capturing.Load(),
	}
}

// Bundles lists the retained bundles, newest first.
func (fr *FlightRecorder) Bundles() []BundleInfo {
	if fr == nil {
		return nil
	}
	return fr.store.list()
}

// BundlePath resolves a bundle id to its archive path.
func (fr *FlightRecorder) BundlePath(id string) (string, bool) {
	if fr == nil {
		return "", false
	}
	return fr.store.open(id)
}

// Close stops the evaluator and waits for any in-flight capture. Safe on
// nil and safe to call twice.
func (fr *FlightRecorder) Close() {
	if fr == nil {
		return
	}
	fr.closeOnce.Do(func() { close(fr.stop) })
	fr.wg.Wait()
}
