package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in Prometheus text exposition format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// AdminOption customizes AdminMux.
type AdminOption func(*adminConfig)

type adminConfig struct {
	traces  *TraceStore
	vars    []debugVar
	flight  *FlightRecorder
	version string
}

type debugVar struct {
	name string
	fn   func() any
}

// WithTraceStore mounts the trace endpoints (/debug/traces and
// /debug/traces/view) backed by ts. A nil store leaves them unmounted.
func WithTraceStore(ts *TraceStore) AdminOption {
	return func(c *adminConfig) { c.traces = ts }
}

// WithDebugVar adds a named variable to /debug/vars alongside the standard
// expvar set (cmdline, memstats). fn is called at scrape time and its
// result JSON-encoded; it must be safe for concurrent use. Engines use it
// to expose live breaker and admission-queue state.
func WithDebugVar(name string, fn func() any) AdminOption {
	return func(c *adminConfig) { c.vars = append(c.vars, debugVar{name: name, fn: fn}) }
}

// WithFlightRecorder mounts the flight-recorder endpoints (/debug/slo,
// /debug/flight, /debug/dashboard) backed by fr. A nil recorder leaves
// them unmounted.
func WithFlightRecorder(fr *FlightRecorder) AdminOption {
	return func(c *adminConfig) { c.flight = fr }
}

// WithBuildInfo appends the build version to the /healthz body (the body
// stays "ok"-prefixed — liveness probes grep for that), so an operator
// can confirm which build answered without a separate endpoint.
func WithBuildInfo(version string) AdminOption {
	return func(c *adminConfig) { c.version = version }
}

// debugVarsHandler renders the expvar set plus the configured extra vars
// as one JSON object, mirroring expvar.Handler's output format.
func debugVarsHandler(vars []debugVar) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
		})
		for _, v := range vars {
			b, err := json.Marshal(v.fn())
			if err != nil {
				b = []byte(fmt.Sprintf("%q", "error: "+err.Error()))
			}
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", v.name, b)
		}
		fmt.Fprintf(w, "\n}\n")
	})
}

// AdminMux builds the operator-facing endpoint an engine process exposes
// on its admin address (conventionally a loopback or cluster-internal
// port, never the public query port — pprof can dump heap contents and
// traces carry query node sets):
//
//	/metrics            Prometheus text exposition of reg
//	/healthz            200 "ok" liveness probe
//	/debug/vars         expvar JSON (Go memstats plus any WithDebugVar
//	                    extras, e.g. breaker and admission-queue state)
//	/debug/pprof        net/http/pprof profiles (heap, goroutine, CPU, trace)
//	/debug/traces       sampled request traces as JSON (?id= detail,
//	                    ?min_ms= filter, ?limit= capped at the ring size)
//	                    — mounted only with WithTraceStore
//	/debug/traces/view  dependency-free HTML waterfall of the same traces
//	                    — mounted only with WithTraceStore
//	/debug/slo          live SLO/trigger/bundle status JSON — mounted only
//	                    with WithFlightRecorder
//	/debug/flight       diagnostic bundle list/fetch/manual-trigger —
//	                    mounted only with WithFlightRecorder
//	/debug/dashboard    dependency-free HTML engine dashboard — mounted
//	                    only with WithFlightRecorder
func AdminMux(reg *Registry, opts ...AdminOption) *http.ServeMux {
	var cfg adminConfig
	for _, o := range opts {
		o(&cfg)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	health := "ok\n"
	if cfg.version != "" {
		health = "ok " + cfg.version + "\n"
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(health))
	})
	if len(cfg.vars) > 0 {
		mux.Handle("/debug/vars", debugVarsHandler(cfg.vars))
	} else {
		mux.Handle("/debug/vars", expvar.Handler())
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if cfg.traces != nil {
		mux.Handle("/debug/traces", TraceHandler(cfg.traces))
		mux.Handle("/debug/traces/view", TraceViewHandler(cfg.traces))
	}
	if cfg.flight != nil {
		mux.Handle("/debug/slo", SLOHandler(cfg.flight))
		mux.Handle("/debug/flight", FlightHandler(cfg.flight))
		mux.Handle("/debug/dashboard", DashboardHandler(cfg.flight))
	}
	return mux
}
