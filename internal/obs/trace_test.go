package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// traceOne runs one root span through fn and returns the stored trace.
func traceOne(t *testing.T, tr *Tracer, fn func(ctx context.Context)) *Trace {
	t.Helper()
	ctx, root := tr.StartRoot(context.Background(), "root")
	fn(ctx)
	id := root.TraceID()
	root.End()
	tc, ok := tr.Store().Get(id)
	if !ok {
		t.Fatalf("trace %s not stored", id)
	}
	return tc
}

func TestSpanTreeAndStore(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 1, Buffer: 8})
	tc := traceOne(t, tr, func(ctx context.Context) {
		cctx, child := StartSpan(ctx, "solve")
		child.SetAttr(Str("kernel", "blocked"), Int("queries", 3))
		child.AddEvent("sweep", Int("sweep", 1), F64("residual", 0.5))
		_, grand := StartSpan(cctx, "inner")
		grand.End()
		child.End()
	})
	if tc.Name != "root" || tc.SampledBy != "probability" {
		t.Fatalf("trace header = %q sampled by %q", tc.Name, tc.SampledBy)
	}
	if len(tc.TraceID) != 16 {
		t.Fatalf("trace id %q not 16 hex digits", tc.TraceID)
	}
	if len(tc.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(tc.Spans))
	}
	byName := map[string]SpanData{}
	for _, s := range tc.Spans {
		byName[s.Name] = s
	}
	if byName["root"].ParentID != 0 {
		t.Errorf("root parent = %d", byName["root"].ParentID)
	}
	if byName["solve"].ParentID != byName["root"].SpanID {
		t.Errorf("solve parent = %d, root id = %d", byName["solve"].ParentID, byName["root"].SpanID)
	}
	if byName["inner"].ParentID != byName["solve"].SpanID {
		t.Errorf("inner parent = %d, solve id = %d", byName["inner"].ParentID, byName["solve"].SpanID)
	}
	solve := byName["solve"]
	if solve.Attrs["kernel"] != "blocked" || solve.Attrs["queries"] != 3 {
		t.Errorf("solve attrs = %v", solve.Attrs)
	}
	if len(solve.Events) != 1 || solve.Events[0].Name != "sweep" {
		t.Fatalf("solve events = %v", solve.Events)
	}
	if tr.OpenSpans() != 0 {
		t.Errorf("OpenSpans = %d after trace finished", tr.OpenSpans())
	}
	if tr.Sampled() != 1 || tr.Dropped() != 0 {
		t.Errorf("sampled/dropped = %d/%d", tr.Sampled(), tr.Dropped())
	}
}

func TestSamplingRules(t *testing.T) {
	// SampleRate 0: ordinary traces are dropped...
	tr := NewTracer(TracerOptions{SampleRate: 0, Buffer: 8})
	_, root := tr.StartRoot(context.Background(), "boring")
	id := root.TraceID()
	root.End()
	if _, ok := tr.Store().Get(id); ok {
		t.Fatal("unsampled trace was stored")
	}
	if tr.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", tr.Dropped())
	}
	// ...but failed traces are always kept,
	_, root = tr.StartRoot(context.Background(), "failed")
	root.SetError(errors.New("boom"))
	id = root.TraceID()
	root.End()
	tc, ok := tr.Store().Get(id)
	if !ok || tc.SampledBy != "error" || tc.Error != "boom" {
		t.Fatalf("failed trace: ok=%v, got %+v", ok, tc)
	}
	// ...and so are slow ones when a threshold is set.
	slow := NewTracer(TracerOptions{SampleRate: 0, SlowThreshold: time.Nanosecond, Buffer: 8})
	_, root = slow.StartRoot(context.Background(), "slow")
	id = root.TraceID()
	time.Sleep(time.Millisecond)
	root.End()
	tc, ok = slow.Store().Get(id)
	if !ok || tc.SampledBy != "slow" {
		t.Fatalf("slow trace: ok=%v, got %+v", ok, tc)
	}
}

func TestNilTracerAndNilSpanNoOps(t *testing.T) {
	var tr *Tracer
	ctx, span := tr.StartRoot(context.Background(), "x")
	if span != nil {
		t.Fatal("nil tracer produced a span")
	}
	if got := SpanFromContext(ctx); got != nil {
		t.Fatal("nil tracer put a span in the context")
	}
	// Every method must be callable on the nil span.
	span.SetAttr(Str("k", "v"))
	span.AddEvent("e")
	span.SetError(errors.New("x"))
	span.End()
	if span.Recording() {
		t.Fatal("nil span claims to record")
	}
	if span.TraceID() != "" {
		t.Fatal("nil span has a trace id")
	}
	_, child := StartSpan(ctx, "child")
	if child != nil {
		t.Fatal("StartSpan minted a span without a parent")
	}
	if tr.Store() != nil || tr.OpenSpans() != 0 || tr.Sampled() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer accessors not zero")
	}
}

func TestEventCapBoundsSpanGrowth(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 1, Buffer: 2})
	tc := traceOne(t, tr, func(ctx context.Context) {
		_, s := StartSpan(ctx, "busy")
		for i := 0; i < maxSpanEvents+25; i++ {
			s.AddEvent("sweep", Int("sweep", i))
		}
		s.End()
	})
	var busy SpanData
	for _, s := range tc.Spans {
		if s.Name == "busy" {
			busy = s
		}
	}
	if len(busy.Events) != maxSpanEvents {
		t.Fatalf("kept %d events, want %d", len(busy.Events), maxSpanEvents)
	}
	if busy.DroppedEvents != 25 {
		t.Fatalf("DroppedEvents = %d, want 25", busy.DroppedEvents)
	}
}

func TestUnendedChildrenClosedAtRootEnd(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 1, Buffer: 2})
	ctx, root := tr.StartRoot(context.Background(), "root")
	StartSpan(ctx, "leaked") // never ended, as if a panic skipped End
	id := root.TraceID()
	root.End()
	if tr.OpenSpans() != 0 {
		t.Fatalf("OpenSpans = %d after root End", tr.OpenSpans())
	}
	tc, _ := tr.Store().Get(id)
	for _, s := range tc.Spans {
		if s.DurationMS < 0 {
			t.Fatalf("span %s exported negative duration", s.Name)
		}
	}
}

func TestTraceStoreRing(t *testing.T) {
	s := NewTraceStore(4)
	ids := make([]string, 10)
	for i := range ids {
		ids[i] = fmt.Sprintf("%016x", i+1)
		s.Add(&Trace{TraceID: ids[i], DurationMS: float64(i)})
	}
	if s.Len() != 4 || s.Capacity() != 4 {
		t.Fatalf("Len/Cap = %d/%d", s.Len(), s.Capacity())
	}
	if _, ok := s.Get(ids[0]); ok {
		t.Fatal("evicted trace still retrievable")
	}
	if _, ok := s.Get(ids[9]); !ok {
		t.Fatal("newest trace missing")
	}
	list := s.List(0, 0)
	if len(list) != 4 || list[0].TraceID != ids[9] || list[3].TraceID != ids[6] {
		t.Fatalf("List order wrong: %v", list)
	}
	if got := s.List(2, 0); len(got) != 2 || got[0].TraceID != ids[9] {
		t.Fatalf("List(2) = %v", got)
	}
	if got := s.List(0, 8.5); len(got) != 1 || got[0].TraceID != ids[9] {
		t.Fatalf("List(min_ms=8.5) = %v", got)
	}
	st := s.Stats()
	if st.Added != 10 || st.Evicted != 6 {
		t.Fatalf("stats = %+v", st)
	}
	// Nil-store accessors must all no-op.
	var nilStore *TraceStore
	nilStore.Add(&Trace{TraceID: "x"})
	if nilStore.Len() != 0 || nilStore.Capacity() != 0 || nilStore.List(0, 0) != nil {
		t.Fatal("nil store accessors not zero")
	}
}

func TestTraceHandlerJSON(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 1, Buffer: 4})
	tc := traceOne(t, tr, func(ctx context.Context) {
		_, s := StartSpan(ctx, "solve")
		s.AddEvent("sweep", Int("sweep", 1))
		s.End()
	})
	srv := httptest.NewServer(TraceHandler(tr.Store()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("list Content-Type = %q", ct)
	}
	var summaries []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&summaries); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(summaries) != 1 || summaries[0]["trace_id"] != tc.TraceID {
		t.Fatalf("summaries = %v", summaries)
	}
	if summaries[0]["spans"] != float64(2) {
		t.Fatalf("span count = %v", summaries[0]["spans"])
	}

	resp, err = http.Get(srv.URL + "?id=" + tc.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	var full Trace
	if err := json.NewDecoder(resp.Body).Decode(&full); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if full.TraceID != tc.TraceID || len(full.Spans) != 2 {
		t.Fatalf("detail = %+v", full)
	}

	for path, want := range map[string]int{
		"?id=0000000000000000": http.StatusNotFound,
		"?limit=bogus":         http.StatusBadRequest,
		"?min_ms=-3":           http.StatusBadRequest,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("GET %s Content-Type = %q", path, ct)
		}
		resp.Body.Close()
	}

	// limit is capped at the ring size: asking for a million returns what
	// the ring holds without error.
	resp, err = http.Get(srv.URL + "?limit=1000000")
	if err != nil {
		t.Fatal(err)
	}
	summaries = nil
	if err := json.NewDecoder(resp.Body).Decode(&summaries); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(summaries) != 1 {
		t.Fatalf("capped list = %v", summaries)
	}
}

func TestTraceViewHandlerHTML(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 1, Buffer: 4})
	tc := traceOne(t, tr, func(ctx context.Context) {
		_, s := StartSpan(ctx, "solve")
		s.AddEvent("sweep", Int("sweep", 1))
		s.End()
	})
	srv := httptest.NewServer(TraceViewHandler(tr.Store()))
	defer srv.Close()

	for _, path := range []string{"/debug/traces/view", "/debug/traces/view?id=" + tc.TraceID} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 1<<20)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
			t.Fatalf("GET %s Content-Type = %q", path, ct)
		}
		if !strings.Contains(string(body[:n]), tc.TraceID) {
			t.Fatalf("GET %s does not mention the trace id", path)
		}
	}
	resp, err := http.Get(srv.URL + "/debug/traces/view?id=ffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing id = %d, want 404", resp.StatusCode)
	}
}

func TestAdminMuxMountsTraceRoutes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "x")
	ts := NewTraceStore(4)
	withTraces := httptest.NewServer(AdminMux(reg, WithTraceStore(ts)))
	defer withTraces.Close()
	without := httptest.NewServer(AdminMux(reg))
	defer without.Close()

	check := func(base, path string, want int) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
	check(withTraces.URL, "/debug/traces", http.StatusOK)
	check(withTraces.URL, "/debug/traces/view", http.StatusOK)
	check(withTraces.URL, "/metrics", http.StatusOK)
	check(without.URL, "/debug/traces", http.StatusNotFound)
	check(without.URL, "/debug/traces/view", http.StatusNotFound)
}

func TestRegisterRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, series := range []string{
		"go_goroutines", "go_heap_alloc_bytes",
		"go_gc_pauses_seconds_total", "process_uptime_seconds",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("exposition missing %s:\n%s", series, out)
		}
	}
	if _, _, err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("malformed exposition: %v", err)
	}
}

func TestSlowQueryEntryTraceFieldNames(t *testing.T) {
	// The JSON field names are an operator-facing contract: a slow-log
	// line's trace_id must be pastable into /debug/traces?id=.
	line, err := json.Marshal(SlowQueryEntry{
		TraceID:     "00000000deadbeef",
		SolveKernel: "blocked",
		SolveSweeps: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"trace_id":"00000000deadbeef"`, `"solve_kernel":"blocked"`, `"solve_sweeps":42`} {
		if !strings.Contains(string(line), field) {
			t.Errorf("slow-log entry missing %s: %s", field, line)
		}
	}
}
