package obs

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file is the diagnostic-bundle side of the flight recorder: a
// capture assembles profiles, traces, a metrics snapshot, and subsystem
// stats into in-memory entries, writes them as one timestamped .tar.gz
// (tmp+rename, so a crashed capture never leaves a partial bundle), and
// the store evicts oldest bundles past a disk budget.

// BundleInfo describes one on-disk diagnostic bundle. It is the
// /debug/flight list JSON and the in-archive index.json contract.
type BundleInfo struct {
	// ID is the bundle's identity: the archive file name without .tar.gz.
	ID string `json:"id"`
	// Time is when the capture started.
	Time time.Time `json:"time"`
	// Trigger is the trigger kind that fired the capture.
	Trigger string `json:"trigger"`
	// Detail is the trigger's one-line evidence description.
	Detail string `json:"detail,omitempty"`
	// SizeBytes is the archive size on disk.
	SizeBytes int64 `json:"size_bytes"`
	// Files lists the archive member names.
	Files []string `json:"files"`
	// Notes records per-file capture problems (e.g. a CPU profile skipped
	// because another profiler held the lock) that did not fail the bundle.
	Notes []string `json:"notes,omitempty"`
}

// bundleEntry is one in-memory archive member before writing.
type bundleEntry struct {
	name string
	data []byte
}

// bundleStore owns the bundle directory: it writes new archives, lists
// existing ones, and keeps total size under the disk budget by deleting
// oldest-first.
type bundleStore struct {
	dir    string
	budget int64

	mu      sync.Mutex
	bundles []BundleInfo // ascending by Time (ID sorts the same way)
}

const bundlePrefix = "flight-"

// newBundleStore creates dir if needed and seeds the in-memory list from
// a directory scan, so bundles from a previous process generation are
// listed and count against the budget.
func newBundleStore(dir string, budget int64) (*bundleStore, error) {
	if budget <= 0 {
		budget = 256 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("flight: create bundle dir: %w", err)
	}
	s := &bundleStore{dir: dir, budget: budget}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("flight: scan bundle dir: %w", err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, bundlePrefix) || !strings.HasSuffix(name, ".tar.gz") {
			continue
		}
		fi, err := ent.Info()
		if err != nil {
			continue
		}
		info := BundleInfo{
			ID:        strings.TrimSuffix(name, ".tar.gz"),
			Time:      fi.ModTime(),
			Trigger:   "unknown",
			SizeBytes: fi.Size(),
		}
		// The archive's own index.json is authoritative when readable.
		if idx, err := readBundleIndex(filepath.Join(dir, name)); err == nil {
			idx.SizeBytes = fi.Size()
			info = idx
		}
		s.bundles = append(s.bundles, info)
	}
	sort.Slice(s.bundles, func(i, j int) bool { return s.bundles[i].ID < s.bundles[j].ID })
	return s, nil
}

// write archives the entries as id.tar.gz, records the bundle, and evicts
// past-budget bundles oldest-first (never the one just written).
func (s *bundleStore) write(info BundleInfo, entries []bundleEntry) (BundleInfo, error) {
	for _, e := range entries {
		info.Files = append(info.Files, e.name)
	}
	info.Files = append([]string{"index.json"}, info.Files...)

	idx, err := json.MarshalIndent(info, "", "  ")
	if err != nil {
		return BundleInfo{}, fmt.Errorf("flight: encode index: %w", err)
	}
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	tw := tar.NewWriter(gz)
	all := append([]bundleEntry{{name: "index.json", data: idx}}, entries...)
	for _, e := range all {
		hdr := &tar.Header{
			Name:    e.name,
			Mode:    0o644,
			Size:    int64(len(e.data)),
			ModTime: info.Time,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return BundleInfo{}, fmt.Errorf("flight: tar %s: %w", e.name, err)
		}
		if _, err := tw.Write(e.data); err != nil {
			return BundleInfo{}, fmt.Errorf("flight: tar %s: %w", e.name, err)
		}
	}
	if err := tw.Close(); err != nil {
		return BundleInfo{}, fmt.Errorf("flight: finish tar: %w", err)
	}
	if err := gz.Close(); err != nil {
		return BundleInfo{}, fmt.Errorf("flight: finish gzip: %w", err)
	}

	final := filepath.Join(s.dir, info.ID+".tar.gz")
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return BundleInfo{}, fmt.Errorf("flight: write bundle: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return BundleInfo{}, fmt.Errorf("flight: publish bundle: %w", err)
	}
	info.SizeBytes = int64(buf.Len())

	s.mu.Lock()
	s.bundles = append(s.bundles, info)
	s.evictLocked(info.ID)
	s.mu.Unlock()
	return info, nil
}

// evictLocked deletes oldest bundles until total size fits the budget,
// sparing keepID. Caller holds s.mu.
func (s *bundleStore) evictLocked(keepID string) {
	var total int64
	for _, b := range s.bundles {
		total += b.SizeBytes
	}
	for total > s.budget && len(s.bundles) > 1 {
		victim := -1
		for i, b := range s.bundles {
			if b.ID != keepID {
				victim = i
				break
			}
		}
		if victim < 0 {
			return
		}
		b := s.bundles[victim]
		os.Remove(filepath.Join(s.dir, b.ID+".tar.gz"))
		total -= b.SizeBytes
		s.bundles = append(s.bundles[:victim], s.bundles[victim+1:]...)
	}
}

// list returns the known bundles, newest first.
func (s *bundleStore) list() []BundleInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]BundleInfo, len(s.bundles))
	for i, b := range s.bundles {
		out[len(out)-1-i] = b
	}
	return out
}

// totalBytes returns the summed archive size of the known bundles.
func (s *bundleStore) totalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, b := range s.bundles {
		total += b.SizeBytes
	}
	return total
}

// open returns the archive path for id after checking the id is known
// (the id is user input on /debug/flight — never joined to the directory
// unchecked).
func (s *bundleStore) open(id string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range s.bundles {
		if b.ID == id {
			return filepath.Join(s.dir, b.ID+".tar.gz"), true
		}
	}
	return "", false
}

// readBundleIndex extracts index.json from an archive on disk.
func readBundleIndex(path string) (BundleInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return BundleInfo{}, err
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return BundleInfo{}, err
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err != nil {
			return BundleInfo{}, fmt.Errorf("no index.json: %w", err)
		}
		if hdr.Name != "index.json" {
			continue
		}
		var info BundleInfo
		if err := json.NewDecoder(tr).Decode(&info); err != nil {
			return BundleInfo{}, err
		}
		return info, nil
	}
}

// StatSource is one named subsystem snapshot included in a bundle's
// stats.json (cache, coalescer, artifact tier, resilience). Fn returns a
// JSON-marshalable value and must be safe for concurrent use.
type StatSource struct {
	Name string
	Fn   func() any
}

// captureBundle assembles a diagnostic bundle for trig. The CPU profile
// runs for cpuDur (skipped with a note when another profiler holds the
// runtime's single CPU-profile slot — e.g. a concurrent /debug/pprof
// scrape); every other member failure is likewise a note, not an error,
// so one broken source never loses the rest of the evidence.
func captureBundle(trig Trigger, now time.Time, cpuDur time.Duration, traceN int,
	reg *Registry, traces *TraceStore, stats []StatSource) (BundleInfo, []bundleEntry) {

	info := BundleInfo{
		ID:      fmt.Sprintf("%s%s-%s", bundlePrefix, now.UTC().Format("20060102T150405.000Z"), trig.Kind),
		Time:    now,
		Trigger: trig.Kind,
		Detail:  trig.Detail,
	}
	var entries []bundleEntry
	note := func(format string, args ...any) {
		info.Notes = append(info.Notes, fmt.Sprintf(format, args...))
	}

	// evidence.json: the trigger's own numbers, always first.
	if b, err := json.MarshalIndent(trig, "", "  "); err == nil {
		entries = append(entries, bundleEntry{"evidence.json", b})
	} else {
		note("evidence: %v", err)
	}

	// cpu.pprof: a cpuDur sample of where the process is burning CPU.
	if cpuDur > 0 {
		var cpu bytes.Buffer
		if err := pprof.StartCPUProfile(&cpu); err != nil {
			note("cpu profile unavailable: %v", err)
		} else {
			time.Sleep(cpuDur)
			pprof.StopCPUProfile()
			entries = append(entries, bundleEntry{"cpu.pprof", cpu.Bytes()})
		}
	}

	// heap.pprof + goroutine.pprof.
	for _, name := range []string{"heap", "goroutine"} {
		p := pprof.Lookup(name)
		if p == nil {
			note("%s profile unavailable", name)
			continue
		}
		var buf bytes.Buffer
		if err := p.WriteTo(&buf, 0); err != nil {
			note("%s profile: %v", name, err)
			continue
		}
		entries = append(entries, bundleEntry{name + ".pprof", buf.Bytes()})
	}

	// traces.json: the last traceN kept traces, newest first.
	if traces != nil {
		kept := traces.List(traceN, 0)
		if b, err := json.MarshalIndent(kept, "", "  "); err == nil {
			entries = append(entries, bundleEntry{"traces.json", b})
		} else {
			note("traces: %v", err)
		}
	}

	// metrics.prom: the full exposition at capture time.
	if reg != nil {
		var buf bytes.Buffer
		if err := reg.WriteText(&buf); err == nil {
			entries = append(entries, bundleEntry{"metrics.prom", buf.Bytes()})
		} else {
			note("metrics: %v", err)
		}
	}

	// stats.json: named subsystem snapshots.
	if len(stats) > 0 {
		snap := make(map[string]any, len(stats))
		for _, src := range stats {
			snap[src.Name] = src.Fn()
		}
		if b, err := json.MarshalIndent(snap, "", "  "); err == nil {
			entries = append(entries, bundleEntry{"stats.json", b})
		} else {
			note("stats: %v", err)
		}
	}

	return info, entries
}
