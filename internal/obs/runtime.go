package obs

import (
	"runtime"
	"time"
)

// RegisterRuntimeMetrics publishes Go process health on a registry so the
// engine's /metrics answers "is the process itself struggling?" alongside
// the query-level series:
//
//	go_goroutines                current goroutine count
//	go_heap_alloc_bytes          live heap bytes (MemStats.HeapAlloc)
//	go_gc_pauses_seconds_total   cumulative stop-the-world pause time
//	process_uptime_seconds       seconds since this call
//
// The collectors are lazy (GaugeFunc/CounterFunc sampled at scrape time);
// the two MemStats-backed series each read runtime.ReadMemStats, which
// briefly stops the world — fine at scrape cadence, so keep /metrics off
// hot paths. Registering twice on one registry panics (duplicate series),
// matching the registry's general contract.
func RegisterRuntimeMetrics(r *Registry) {
	start := time.Now()
	r.GaugeFunc("go_goroutines", "Current number of goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects (MemStats.HeapAlloc).", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	r.CounterFunc("go_gc_pauses_seconds_total", "Cumulative GC stop-the-world pause time in seconds.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.PauseTotalNs) / 1e9
	})
	r.CounterFunc("process_uptime_seconds", "Seconds since the process registered its metrics.", func() float64 {
		return time.Since(start).Seconds()
	})
}
