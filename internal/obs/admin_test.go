package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestAdminEndpointSmoke is the `make obs-smoke` gate: it starts the admin
// endpoint, scrapes /metrics, and fails on malformed exposition output. It
// also probes the liveness and pprof routes.
func TestAdminEndpointSmoke(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ceps_queries_total", "Total queries.", Label{"path", "full"}).Add(3)
	reg.Histogram("ceps_query_duration_seconds", "Latency.", DurationBuckets()).Observe(0.02)

	srv := httptest.NewServer(AdminMux(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	// /metrics parses as well-formed Prometheus exposition.
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	fams, samples, err := ValidateExposition(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics is malformed: %v\n%s", err, body)
	}
	if fams < 2 || samples < 3 {
		t.Fatalf("/metrics too sparse: %d families, %d samples\n%s", fams, samples, body)
	}

	// /healthz returns 200.
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	// expvar serves JSON with memstats.
	if code, body := get("/debug/vars"); code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars = %d (memstats present: %v)", code, strings.Contains(body, "memstats"))
	}

	// pprof index serves, and a concrete profile endpoint works.
	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	if code, _ := get("/debug/pprof/goroutine?debug=1"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/goroutine = %d", code)
	}
}

func TestAdminMuxWithDebugVar(t *testing.T) {
	reg := NewRegistry()
	type state struct {
		Breaker string `json:"breaker_state"`
		Depth   int    `json:"queue_depth"`
	}
	srv := httptest.NewServer(AdminMux(reg,
		WithDebugVar("resilience", func() any { return state{Breaker: "closed", Depth: 2} })))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	// The merged handler must stay valid JSON and include both the
	// standard expvar set and the custom var.
	var all map[string]json.RawMessage
	if err := json.Unmarshal(body, &all); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v\n%s", err, body)
	}
	if _, ok := all["memstats"]; !ok {
		t.Error("/debug/vars lost the standard memstats var")
	}
	raw, ok := all["resilience"]
	if !ok {
		t.Fatalf("/debug/vars missing custom var: %s", body)
	}
	var got state
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("resilience var: %v", err)
	}
	if got.Breaker != "closed" || got.Depth != 2 {
		t.Errorf("resilience var = %+v", got)
	}
}
