package obs

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request-scoped tracing half of the observability layer:
// a Tracer hands every sampled request a tree of Spans whose shape mirrors
// the paper's §6 cost decomposition (partition / solve / combine /
// extract), with bounded per-span events for the interior of the hot loops
// (per-sweep convergence, per-destination EXTRACT picks). Finished traces
// land in a fixed-capacity TraceStore ring served by the admin mux.
//
// Everything is nil-safe by design: a nil *Tracer starts nil *Spans, and
// every Span method is a no-op on a nil receiver, so the pipeline threads
// spans unconditionally and pays one pointer check per call site when
// tracing is off. Event emission inside solver loops must additionally be
// gated on Span.Recording() so the attribute slices are never even built.

// Attr is one key/value attribute attached to a span or event.
type Attr struct {
	Key   string
	Value any
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: v} }

// F64 builds a float attribute.
func F64(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// SpanEvent is one timestamped point event inside a span — e.g. one power
// iteration sweep, or one EXTRACT destination pick.
type SpanEvent struct {
	Time  time.Time
	Name  string
	Attrs []Attr
}

// maxSpanEvents bounds how many events one span retains; later events are
// counted but dropped, so a pathological query cannot balloon a trace.
const maxSpanEvents = 512

// Span is one timed operation of a trace. Spans nest: children are started
// from a context carrying the parent. All methods are safe for concurrent
// use and are no-ops on a nil receiver.
type Span struct {
	tr     *activeTrace
	id     uint64
	parent uint64
	name   string
	start  time.Time

	mu      sync.Mutex
	attrs   []Attr
	events  []SpanEvent
	dropped int
	errMsg  string
	end     time.Time
	ended   bool
}

// Recording reports whether events and attributes set on the span will be
// retained. It is the gate hot loops check before building attributes.
func (s *Span) Recording() bool { return s != nil }

// TraceID returns the span's trace id as a 16-hex-digit string, or "" for
// a nil span.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return formatTraceID(s.tr.id)
}

// SetAttr attaches attributes to the span. A repeated key overwrites the
// earlier value in the exported snapshot.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// AddEvent appends a timestamped event. Events beyond the per-span bound
// are dropped (the drop count is exported with the trace).
func (s *Span) AddEvent(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if len(s.events) >= maxSpanEvents {
		s.dropped++
	} else {
		s.events = append(s.events, SpanEvent{Time: now, Name: name, Attrs: attrs})
	}
	s.mu.Unlock()
}

// SetError marks the span failed. A nil error is a no-op, so callers can
// thread the usual `err` unconditionally.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.errMsg = err.Error()
	s.mu.Unlock()
}

// End finishes the span. Ending the root span finalizes the trace: the
// sampling verdict is made (keep when head-sampled, slow, or failed) and
// the finished trace is either stored or counted as dropped. End is
// idempotent; ending a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = now
	s.mu.Unlock()
	s.tr.tracer.open.Add(-1)
	if s.parent == 0 {
		s.tr.finish(now)
	}
}

// activeTrace is one in-flight trace: the mutable accumulator behind the
// public immutable Trace snapshot.
type activeTrace struct {
	tracer      *Tracer
	id          uint64
	start       time.Time
	headSampled bool

	mu     sync.Mutex
	spans  []*Span
	nextID uint64
}

// newSpan registers a child span on the trace.
func (tr *activeTrace) newSpan(name string, parent uint64) *Span {
	tr.mu.Lock()
	tr.nextID++
	s := &Span{tr: tr, id: tr.nextID, parent: parent, name: name, start: time.Now()}
	tr.spans = append(tr.spans, s)
	tr.mu.Unlock()
	tr.tracer.open.Add(1)
	return s
}

// finish makes the tail sampling decision and snapshots the trace into the
// store. Un-ended descendant spans (a panic skipped their End) are closed
// at the root's end time so the trace never exports open intervals.
func (tr *activeTrace) finish(now time.Time) {
	tr.mu.Lock()
	spans := append([]*Span(nil), tr.spans...)
	tr.mu.Unlock()
	var rootErr string
	for _, s := range spans {
		s.mu.Lock()
		if !s.ended {
			s.ended = true
			s.end = now
			s.mu.Unlock()
			tr.tracer.open.Add(-1)
		} else {
			s.mu.Unlock()
		}
		if s.parent == 0 {
			s.mu.Lock()
			rootErr = s.errMsg
			s.mu.Unlock()
		}
	}
	t := tr.tracer
	dur := now.Sub(tr.start)
	reason := ""
	switch {
	case rootErr != "":
		reason = "error"
	case t.slow > 0 && dur >= t.slow:
		reason = "slow"
	case tr.headSampled:
		reason = "probability"
	}
	if reason == "" {
		t.dropped.Add(1)
		return
	}
	t.sampled.Add(1)
	t.store.Add(tr.snapshot(now, dur, rootErr, reason, spans))
}

// snapshot freezes the trace into the immutable exported form.
func (tr *activeTrace) snapshot(now time.Time, dur time.Duration, rootErr, reason string, spans []*Span) *Trace {
	td := &Trace{
		TraceID:    formatTraceID(tr.id),
		Start:      tr.start,
		DurationMS: durMS(dur),
		Error:      rootErr,
		SampledBy:  reason,
		Spans:      make([]SpanData, 0, len(spans)),
	}
	for _, s := range spans {
		s.mu.Lock()
		sd := SpanData{
			SpanID:        s.id,
			ParentID:      s.parent,
			Name:          s.name,
			StartMS:       durMS(s.start.Sub(tr.start)),
			DurationMS:    durMS(s.end.Sub(s.start)),
			Error:         s.errMsg,
			Attrs:         attrMap(s.attrs),
			DroppedEvents: s.dropped,
		}
		if s.parent == 0 {
			td.Name = s.name
		}
		for _, ev := range s.events {
			sd.Events = append(sd.Events, EventData{
				OffsetMS: durMS(ev.Time.Sub(tr.start)),
				Name:     ev.Name,
				Attrs:    attrMap(ev.Attrs),
			})
		}
		s.mu.Unlock()
		td.Spans = append(td.Spans, sd)
	}
	return td
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

func durMS(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func formatTraceID(id uint64) string {
	const hexDigits = 16
	s := strconv.FormatUint(id, 16)
	for len(s) < hexDigits {
		s = "0" + s
	}
	return s
}

// TracerOptions configures NewTracer. The zero value samples nothing
// probabilistically but still keeps every failed trace.
type TracerOptions struct {
	// SampleRate is the head-sampling probability in [0, 1]: the fraction
	// of traces kept regardless of outcome. Values outside the range clamp.
	SampleRate float64
	// SlowThreshold, when positive, keeps every trace at least this slow
	// even when the head-sampling coin said no — the always-on escape hatch
	// for "why was this one query slow?". Failed traces are always kept.
	SlowThreshold time.Duration
	// Buffer is the trace-ring capacity (finished, kept traces retained
	// for /debug/traces). <= 0 means DefaultTraceBuffer.
	Buffer int
	// Store supplies an external ring; nil builds one of Buffer capacity.
	Store *TraceStore
}

// DefaultTraceBuffer is the trace-ring capacity when none is configured.
const DefaultTraceBuffer = 256

// Tracer starts request-scoped traces. A nil *Tracer is a valid no-op
// tracer: StartRoot returns a nil span and the whole pipeline's tracing
// code degenerates to pointer checks.
type Tracer struct {
	sample  float64
	slow    time.Duration
	store   *TraceStore
	open    atomic.Int64
	sampled atomic.Uint64
	dropped atomic.Uint64
}

// NewTracer builds a tracer writing kept traces to its store.
func NewTracer(o TracerOptions) *Tracer {
	if o.SampleRate < 0 {
		o.SampleRate = 0
	}
	if o.SampleRate > 1 {
		o.SampleRate = 1
	}
	st := o.Store
	if st == nil {
		st = NewTraceStore(o.Buffer)
	}
	return &Tracer{sample: o.SampleRate, slow: o.SlowThreshold, store: st}
}

// Store returns the tracer's trace ring (nil for a nil tracer).
func (t *Tracer) Store() *TraceStore {
	if t == nil {
		return nil
	}
	return t.store
}

// OpenSpans returns the number of started-but-not-ended spans — zero
// whenever no traced request is in flight (leak detector for tests).
func (t *Tracer) OpenSpans() int64 {
	if t == nil {
		return 0
	}
	return t.open.Load()
}

// Sampled returns how many finished traces were kept (stored).
func (t *Tracer) Sampled() uint64 {
	if t == nil {
		return 0
	}
	return t.sampled.Load()
}

// Dropped returns how many finished traces were discarded by sampling.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// StartRoot opens a new trace with one root span and returns a context
// carrying it. Every trace records fully (cheap in-memory span tree); the
// keep/drop decision is made at root End, when the duration and error
// status that the slow/error sampling rules need are known. On a nil
// tracer it returns ctx unchanged and a nil span.
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	tr := &activeTrace{
		tracer:      t,
		id:          randUint64(),
		start:       time.Now(),
		headSampled: t.coin(),
	}
	s := tr.newSpan(name, 0)
	return ContextWithSpan(ctx, s), s
}

// coin makes the head-sampling decision.
func (t *Tracer) coin() bool {
	if t.sample <= 0 {
		return false
	}
	if t.sample >= 1 {
		return true
	}
	return float64(randUint64()>>11)/(1<<53) < t.sample
}

// spanCtxKey keys the active span in a context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying s as the active span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the active span, or nil when ctx carries none —
// and a nil span no-ops everywhere, so callers never need to branch.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's active span and returns a
// context carrying the child. Without an active span (tracing off, or an
// unsampled path) it returns ctx unchanged and a nil span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.tr.newSpan(name, parent.id)
	return ContextWithSpan(ctx, s), s
}

// idState seeds the lock-free splitmix64 sequence behind trace ids and
// sampling coins. Sequential streams from one seed are fine here: ids need
// uniqueness and coins need uniformity, not unpredictability.
var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano()))
}

// randUint64 returns the next splitmix64 output. The zero result is
// remapped so trace ids are always non-zero.
func randUint64() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		return 1
	}
	return x
}

// String renders a short operator-facing summary.
func (t *Trace) String() string {
	return fmt.Sprintf("trace %s %s %.3fms (%d spans, sampled by %s)",
		t.TraceID, t.Name, t.DurationMS, len(t.Spans), t.SampledBy)
}
