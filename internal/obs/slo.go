package obs

import (
	"fmt"
	"sync"
	"time"
)

// This file is the SLO engine of the flight recorder: declarative
// objectives (latency, error rate, shed rate, cache/artifact hit rate)
// evaluated over rotating multi-window sliding aggregates (1m/5m/1h), with
// burn-rate computation against each objective's error budget. The
// aggregates are good/bad event counts — a latency objective of "p99 ≤
// 250ms" is tracked as "≥ 99% of requests finish within 250ms", which
// aggregates exactly across windows and shards the way a windowed
// quantile sketch would not.

// ObjectiveKind selects which query-outcome signal feeds an objective.
type ObjectiveKind int

const (
	// ObjectiveLatency counts a request good when it succeeded within
	// LatencyBound. Sheds are excluded (they are the shed objective's
	// signal); errors count bad — a timeout is the slowest request there is.
	ObjectiveLatency ObjectiveKind = iota
	// ObjectiveErrorRate counts a non-shed request good when it succeeded.
	ObjectiveErrorRate
	// ObjectiveShedRate counts every request, good unless it was shed.
	ObjectiveShedRate
	// ObjectiveCacheHitRate counts per-source cache lookups (hits good,
	// misses bad).
	ObjectiveCacheHitRate
	// ObjectiveArtifactHitRate counts cache misses consulting the
	// precompute tier (artifact rows good, iterative fallbacks bad).
	ObjectiveArtifactHitRate
)

// String names the kind for JSON status and metric labels.
func (k ObjectiveKind) String() string {
	switch k {
	case ObjectiveLatency:
		return "latency"
	case ObjectiveErrorRate:
		return "error_rate"
	case ObjectiveShedRate:
		return "shed_rate"
	case ObjectiveCacheHitRate:
		return "cache_hit_rate"
	case ObjectiveArtifactHitRate:
		return "artifact_hit_rate"
	default:
		return fmt.Sprintf("ObjectiveKind(%d)", int(k))
	}
}

// Objective is one declarative service-level objective.
type Objective struct {
	// Name labels the objective in metrics, /debug/slo and triggers.
	Name string
	// Kind selects the signal (latency, error rate, ...).
	Kind ObjectiveKind
	// Target is the minimum good fraction in (0, 1); 1-Target is the error
	// budget burn rates are computed against.
	Target float64
	// LatencyBound is the per-request bound for ObjectiveLatency.
	LatencyBound time.Duration
	// NoBurnAlert excludes the objective from burn-rate triggering (it is
	// still tracked and exported). Hit-rate objectives set it — a cold cache
	// is not an incident; the hit-rate-collapse detector compares windows
	// against each other instead.
	NoBurnAlert bool
}

// Validate rejects unusable objectives.
func (o Objective) Validate() error {
	if o.Name == "" {
		return fmt.Errorf("obs: objective needs a name")
	}
	if o.Target <= 0 || o.Target >= 1 {
		return fmt.Errorf("obs: objective %q target %g outside (0, 1)", o.Name, o.Target)
	}
	if o.Kind == ObjectiveLatency && o.LatencyBound <= 0 {
		return fmt.Errorf("obs: latency objective %q needs a positive bound", o.Name)
	}
	return nil
}

// DefaultObjectives is the stock objective set an engine arms when the
// caller gives none: latency p99, error rate, shed rate and cache hit
// rate. The artifact hit-rate objective is appended by engines with a
// precompute tier attached.
func DefaultObjectives() []Objective {
	return []Objective{
		{Name: "latency_p99", Kind: ObjectiveLatency, Target: 0.99, LatencyBound: 250 * time.Millisecond},
		{Name: "error_rate", Kind: ObjectiveErrorRate, Target: 0.999},
		{Name: "shed_rate", Kind: ObjectiveShedRate, Target: 0.99},
		{Name: "cache_hit_rate", Kind: ObjectiveCacheHitRate, Target: 0.80, NoBurnAlert: true},
	}
}

// sloWindowSpec fixes the three rotating windows every objective tracks.
// Order matters: window 0 is the fast burn window, window 1 the slow one,
// window 2 the long baseline the collapse detector compares against.
var sloWindowSpec = []struct {
	name      string
	bucketDur time.Duration
	buckets   int
}{
	{"1m", time.Second, 60},
	{"5m", 5 * time.Second, 60},
	{"1h", time.Minute, 60},
}

// sloBucket is one rotating slice of a sliding window. slot is the
// absolute bucket index (unix nanos / bucket duration); a stale slot means
// the slice has wrapped and is reset before use — the same idiom as the
// circuit breaker's failure window.
type sloBucket struct {
	slot      int64
	good, bad uint64
}

// sloWindow is one rotating good/bad aggregate.
type sloWindow struct {
	bucketDur time.Duration
	buckets   []sloBucket
}

func newSLOWindow(bucketDur time.Duration, n int) *sloWindow {
	return &sloWindow{bucketDur: bucketDur, buckets: make([]sloBucket, n)}
}

// add folds good/bad events into the live bucket. Callers hold the
// tracker's mutex.
func (w *sloWindow) add(now time.Time, good, bad uint64) {
	slot := now.UnixNano() / int64(w.bucketDur)
	bk := &w.buckets[slot%int64(len(w.buckets))]
	if bk.slot != slot {
		*bk = sloBucket{slot: slot}
	}
	bk.good += good
	bk.bad += bad
}

// counts sums the buckets still inside the window. Callers hold the
// tracker's mutex.
func (w *sloWindow) counts(now time.Time) (good, bad uint64) {
	oldest := now.UnixNano()/int64(w.bucketDur) - int64(len(w.buckets)) + 1
	for i := range w.buckets {
		if w.buckets[i].slot >= oldest {
			good += w.buckets[i].good
			bad += w.buckets[i].bad
		}
	}
	return good, bad
}

// QueryOutcome is one finished request as the SLO engine sees it. The
// engine's metered funnel fills it from the query result and error; every
// field is a plain count, so recording is a mutex and a few adds.
type QueryOutcome struct {
	// Latency is the end-to-end response time.
	Latency time.Duration
	// Err reports a failed (non-shed) request.
	Err bool
	// Shed reports a load-shed request (ErrOverloaded).
	Shed bool
	// CacheHits/CacheMisses are the request's per-source score-cache
	// outcomes; ArtifactHits counts the misses answered by the precompute
	// tier.
	CacheHits, CacheMisses, ArtifactHits int
}

// WindowStatus is one window's aggregate in ObjectiveStatus.
type WindowStatus struct {
	// Window names the span: "1m", "5m" or "1h".
	Window string `json:"window"`
	// Good and Bad are the event counts still inside the window.
	Good uint64 `json:"good"`
	Bad  uint64 `json:"bad"`
	// GoodRatio is Good/(Good+Bad), 1 with no samples (no news is good
	// news for burn computation).
	GoodRatio float64 `json:"good_ratio"`
	// BurnRate is (1-GoodRatio)/(1-Target): 1.0 burns the error budget
	// exactly at the sustainable rate, higher is faster.
	BurnRate float64 `json:"burn_rate"`
}

// ObjectiveStatus is one objective's live evaluation in the /debug/slo
// document. Field names are an operator contract.
type ObjectiveStatus struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Target float64 `json:"target"`
	// LatencyBoundMS is the per-request bound for latency objectives.
	LatencyBoundMS float64        `json:"latency_bound_ms,omitempty"`
	Windows        []WindowStatus `json:"windows"`
	// FastBurn and SlowBurn are the 1m and 5m burn rates the trigger
	// pipeline alerts on; Breached reports both over their thresholds now.
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	Breached bool    `json:"breached"`
}

// objectiveState is one objective plus its rotating windows.
type objectiveState struct {
	obj     Objective
	windows []*sloWindow
}

// SLOTracker evaluates a set of objectives over the fixed 1m/5m/1h
// windows. Safe for concurrent use; recording is one mutex acquisition
// for all objectives.
type SLOTracker struct {
	mu       sync.Mutex
	objs     []*objectiveState
	fastBurn float64 // breach threshold on the 1m window
	slowBurn float64 // breach threshold on the 5m window
	minEvents uint64 // samples a window needs before its burn rate is acted on
}

// NewSLOTracker builds a tracker. fastBurn/slowBurn are the breach
// thresholds on the 1m and 5m windows (≤ 0 picks 14.4 and 6, the classic
// multiwindow page thresholds scaled to these spans); minEvents guards
// cold windows from alerting (≤ 0 picks 20).
func NewSLOTracker(objectives []Objective, fastBurn, slowBurn float64, minEvents int) (*SLOTracker, error) {
	if fastBurn <= 0 {
		fastBurn = 14.4
	}
	if slowBurn <= 0 {
		slowBurn = 6
	}
	if minEvents <= 0 {
		minEvents = 20
	}
	t := &SLOTracker{fastBurn: fastBurn, slowBurn: slowBurn, minEvents: uint64(minEvents)}
	for _, o := range objectives {
		if err := o.Validate(); err != nil {
			return nil, err
		}
		st := &objectiveState{obj: o}
		for _, spec := range sloWindowSpec {
			st.windows = append(st.windows, newSLOWindow(spec.bucketDur, spec.buckets))
		}
		t.objs = append(t.objs, st)
	}
	return t, nil
}

// Observe folds one finished request into every objective's windows. A nil
// tracker is a valid no-op receiver.
func (t *SLOTracker) Observe(o QueryOutcome) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, st := range t.objs {
		var good, bad uint64
		switch st.obj.Kind {
		case ObjectiveLatency:
			if o.Shed {
				continue
			}
			if !o.Err && o.Latency <= st.obj.LatencyBound {
				good = 1
			} else {
				bad = 1
			}
		case ObjectiveErrorRate:
			if o.Shed {
				continue
			}
			if o.Err {
				bad = 1
			} else {
				good = 1
			}
		case ObjectiveShedRate:
			if o.Shed {
				bad = 1
			} else {
				good = 1
			}
		case ObjectiveCacheHitRate:
			good, bad = uint64(o.CacheHits), uint64(o.CacheMisses)
		case ObjectiveArtifactHitRate:
			good = uint64(o.ArtifactHits)
			if miss := o.CacheMisses - o.ArtifactHits; miss > 0 {
				bad = uint64(miss)
			}
		}
		if good == 0 && bad == 0 {
			continue
		}
		for _, w := range st.windows {
			w.add(now, good, bad)
		}
	}
}

// burn computes a window's burn rate against an objective's error budget.
func burn(good, bad uint64, target float64) (ratio, burnRate float64) {
	total := good + bad
	if total == 0 {
		return 1, 0
	}
	ratio = float64(good) / float64(total)
	return ratio, (1 - ratio) / (1 - target)
}

// Status evaluates every objective now. A nil tracker returns nil.
func (t *SLOTracker) Status() []ObjectiveStatus {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ObjectiveStatus, 0, len(t.objs))
	for _, st := range t.objs {
		os := ObjectiveStatus{
			Name:   st.obj.Name,
			Kind:   st.obj.Kind.String(),
			Target: st.obj.Target,
		}
		if st.obj.Kind == ObjectiveLatency {
			os.LatencyBoundMS = float64(st.obj.LatencyBound.Nanoseconds()) / 1e6
		}
		var totals []uint64
		for i, w := range st.windows {
			good, bad := w.counts(now)
			ratio, br := burn(good, bad, st.obj.Target)
			os.Windows = append(os.Windows, WindowStatus{
				Window:    sloWindowSpec[i].name,
				Good:      good,
				Bad:       bad,
				GoodRatio: ratio,
				BurnRate:  br,
			})
			totals = append(totals, good+bad)
		}
		os.FastBurn = os.Windows[0].BurnRate
		os.SlowBurn = os.Windows[1].BurnRate
		os.Breached = !st.obj.NoBurnAlert &&
			totals[0] >= t.minEvents && totals[1] >= t.minEvents &&
			os.FastBurn >= t.fastBurn && os.SlowBurn >= t.slowBurn
		out = append(out, os)
	}
	return out
}

// WindowRatio returns one objective's good ratio and sample count over the
// named window ("1m", "5m", "1h"); ok is false for an unknown objective
// or window. The anomaly detectors (shed surge, hit-rate collapse) read
// through this instead of re-deriving window math.
func (t *SLOTracker) WindowRatio(objective, window string) (ratio float64, samples uint64, ok bool) {
	if t == nil {
		return 0, 0, false
	}
	wi := -1
	for i, spec := range sloWindowSpec {
		if spec.name == window {
			wi = i
		}
	}
	if wi < 0 {
		return 0, 0, false
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, st := range t.objs {
		if st.obj.Name != objective {
			continue
		}
		good, bad := st.windows[wi].counts(now)
		r, _ := burn(good, bad, st.obj.Target)
		return r, good + bad, true
	}
	return 0, 0, false
}
