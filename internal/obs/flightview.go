package obs

import (
	"encoding/json"
	"fmt"
	"html/template"
	"io"
	"net/http"
	"os"
)

// This file serves the FlightRecorder over the admin mux:
//
//	/debug/slo                live SLO + trigger + bundle status as JSON
//	/debug/flight             bundle listing as JSON
//	/debug/flight?id=ID       one bundle streamed as .tar.gz
//	/debug/flight?trigger=1   POST: capture a manual bundle now
//	/debug/dashboard          dependency-free HTML view (SLO table, burn
//	                          bars, sparklines, recent triggers)

func writeFlightJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// flightError is the JSON error body of the flight endpoints.
type flightError struct {
	Error string `json:"error"`
}

// SLOHandler serves the live FlightStatus document as JSON.
func SLOHandler(fr *FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeFlightJSON(w, http.StatusOK, fr.Status())
	})
}

// FlightHandler serves the bundle API: list (JSON), fetch (?id= streams
// the archive), and manual capture (POST ?trigger=1 — a capture blocks
// for the CPU-profile duration and returns the new bundle's info).
func FlightHandler(fr *FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("trigger") != "" {
			if r.Method != http.MethodPost {
				writeFlightJSON(w, http.StatusMethodNotAllowed,
					flightError{Error: "manual capture requires POST (it burns a 2s CPU profile)"})
				return
			}
			info, err := fr.TriggerManual(r.URL.Query().Get("reason"))
			if err != nil {
				writeFlightJSON(w, http.StatusConflict, flightError{Error: err.Error()})
				return
			}
			writeFlightJSON(w, http.StatusOK, info)
			return
		}
		if id := r.URL.Query().Get("id"); id != "" {
			path, ok := fr.BundlePath(id)
			if !ok {
				writeFlightJSON(w, http.StatusNotFound, flightError{Error: fmt.Sprintf("no retained bundle %q", id)})
				return
			}
			f, err := os.Open(path)
			if err != nil {
				writeFlightJSON(w, http.StatusInternalServerError, flightError{Error: err.Error()})
				return
			}
			defer f.Close()
			w.Header().Set("Content-Type", "application/gzip")
			w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+".tar.gz"))
			if fi, err := f.Stat(); err == nil {
				w.Header().Set("Content-Length", fmt.Sprint(fi.Size()))
			}
			_, _ = io.Copy(w, f)
			return
		}
		writeFlightJSON(w, http.StatusOK, fr.Bundles())
	})
}

// The dashboard is one self-contained page: the server renders nothing but
// the skeleton; a small inline script polls /debug/slo once a second and
// redraws the SLO table, burn bars, sparklines (inline SVG from the
// history ring), and the trigger/bundle lists. No external assets.
var dashboardTmpl = template.Must(template.New("dash").Parse(`<!DOCTYPE html>
<html><head><title>ceps dashboard</title><style>
body{font-family:monospace;margin:1.5em;background:#fafafa;color:#222}
h2,h3{margin:.4em 0}
small,.meta{color:#777;font-size:12px}
table{border-collapse:collapse;min-width:60%}
td,th{padding:.3em .8em;border-bottom:1px solid #ddd;text-align:left;font-size:13px}
tr.breach td{background:#fdecea}
tr.suppressed td{color:#999}
a{color:#0b57d0;text-decoration:none}
.burnbar{background:#eee;height:10px;width:120px;display:inline-block;vertical-align:middle;position:relative}
.burnbar i{position:absolute;left:0;top:0;bottom:0;background:#0b8a3e;display:block}
.burnbar i.hot{background:#c84a4a}
.spark{margin:0 1.2em .8em 0}
.cards{display:flex;flex-wrap:wrap}
#err{color:#c84a4a}
</style></head><body>
<h2>ceps engine dashboard <small id="asof"></small> <span id="err"></span></h2>
<div class="meta"><a href="/debug/slo">/debug/slo</a> · <a href="/debug/flight">/debug/flight</a> · <a href="/debug/traces/view">trace waterfall</a> · <a href="/metrics">/metrics</a></div>
<h3>objectives</h3>
<table id="slo"><tr><th>objective</th><th>kind</th><th>target</th><th>1m</th><th>5m</th><th>1h</th><th>fast burn</th><th>slow burn</th><th>state</th></tr></table>
<h3>latency &amp; load <small>(windowed per evaluator tick)</small></h3>
<div class="cards" id="sparks"></div>
<h3>recent triggers</h3>
<table id="trig"><tr><th>time</th><th>kind</th><th>detail</th><th>bundle</th></tr></table>
<h3>bundles <small id="budget"></small></h3>
<table id="bund"><tr><th>id</th><th>trigger</th><th>size</th><th>files</th></tr></table>
<script>
function fmtPct(x){return (100*x).toFixed(2)+"%"}
function esc(s){var d=document.createElement("div");d.textContent=s==null?"":String(s);return d.innerHTML}
function spark(name,pts,key){
  var vals=pts.map(function(p){return p.series[key]}).filter(function(v){return v!==undefined});
  if(!vals.length)return "";
  var w=220,h=48,max=Math.max.apply(null,vals.concat([1e-9]));
  var step=vals.length>1?w/(vals.length-1):w;
  var d=vals.map(function(v,i){return (i?"L":"M")+(i*step).toFixed(1)+","+(h-4-(v/max)*(h-10)).toFixed(1)}).join(" ");
  return '<div class="spark"><div class="meta">'+esc(key)+' <b>'+vals[vals.length-1].toFixed(2)+
    '</b> (max '+max.toFixed(2)+')</div><svg width="'+w+'" height="'+h+'">'+
    '<rect width="'+w+'" height="'+h+'" fill="#f0f0f0"/><path d="'+d+'" fill="none" stroke="#0b57d0" stroke-width="1.5"/></svg></div>';
}
function burnCell(v,thr){
  var pct=Math.min(100,100*v/Math.max(thr,1e-9));
  return '<span class="burnbar"><i class="'+(v>=thr?"hot":"")+'" style="width:'+pct.toFixed(0)+'%"></i></span> '+v.toFixed(2);
}
function draw(st){
  document.getElementById("asof").textContent="as of "+new Date().toLocaleTimeString();
  var rows='<tr><th>objective</th><th>kind</th><th>target</th><th>1m</th><th>5m</th><th>1h</th><th>fast burn</th><th>slow burn</th><th>state</th></tr>';
  (st.objectives||[]).forEach(function(o){
    var w=o.windows||[];
    rows+='<tr'+(o.breached?' class="breach"':'')+'><td>'+esc(o.name)+'</td><td>'+esc(o.kind)+'</td><td>'+fmtPct(o.target)+'</td>';
    for(var i=0;i<3;i++){rows+='<td>'+(w[i]?fmtPct(w[i].good_ratio)+' <small>('+(w[i].good+w[i].bad)+')</small>':'—')+'</td>'}
    rows+='<td>'+burnCell(o.fast_burn,st.fast_burn_threshold)+'</td><td>'+burnCell(o.slow_burn,st.slow_burn_threshold)+'</td>';
    rows+='<td>'+(o.breached?'BREACHED':'ok')+'</td></tr>';
  });
  document.getElementById("slo").innerHTML=rows;
  var hist=st.history||[],keys={};
  hist.forEach(function(p){Object.keys(p.series||{}).forEach(function(k){keys[k]=1})});
  var order=Object.keys(keys).filter(function(k){return /_p99_ms$|_p50_ms$|_qps$/.test(k)}).sort();
  document.getElementById("sparks").innerHTML=order.map(function(k){return spark(k,hist,k)}).join("")||'<div class="meta">no history yet</div>';
  var trig='<tr><th>time</th><th>kind</th><th>detail</th><th>bundle</th></tr>';
  (st.triggers||[]).slice(0,15).forEach(function(t){
    trig+='<tr'+(t.suppressed?' class="suppressed"':'')+'><td>'+esc(new Date(t.time).toLocaleTimeString())+'</td><td>'+esc(t.kind)+'</td><td>'+esc(t.detail)+
      (t.error?' <span id="err">'+esc(t.error)+'</span>':'')+'</td><td>'+
      (t.bundle_id?'<a href="/debug/flight?id='+encodeURIComponent(t.bundle_id)+'">'+esc(t.bundle_id)+'</a>':(t.suppressed?'debounced':'—'))+'</td></tr>';
  });
  document.getElementById("trig").innerHTML=trig;
  document.getElementById("budget").textContent="("+(st.bundle_bytes/1048576).toFixed(1)+" MiB of "+(st.bundle_budget/1048576).toFixed(0)+" MiB budget)";
  var bund='<tr><th>id</th><th>trigger</th><th>size</th><th>files</th></tr>';
  (st.bundles||[]).forEach(function(b){
    bund+='<tr><td><a href="/debug/flight?id='+encodeURIComponent(b.id)+'">'+esc(b.id)+'</a></td><td>'+esc(b.trigger)+'</td><td>'+
      (b.size_bytes/1024).toFixed(1)+' KiB</td><td>'+esc((b.files||[]).join(" "))+'</td></tr>';
  });
  document.getElementById("bund").innerHTML=bund;
}
function poll(){
  fetch("/debug/slo").then(function(r){return r.json()}).then(function(st){
    document.getElementById("err").textContent="";draw(st);
  }).catch(function(e){document.getElementById("err").textContent="poll failed: "+e});
}
poll();setInterval(poll,1000);
</script>
</body></html>`))

// DashboardHandler serves the live HTML dashboard for a recorder.
func DashboardHandler(fr *FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_ = dashboardTmpl.Execute(w, nil)
	})
}
