package obs

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strconv"
)

// This file serves the TraceStore over the admin mux:
//
//	/debug/traces            JSON summaries, newest first
//	/debug/traces?id=ID      one full trace (spans, events)
//	/debug/traces?min_ms=N   only traces at least N ms slow
//	/debug/traces?limit=N    at most N summaries (capped at the ring size)
//	/debug/traces/view       dependency-free HTML waterfall
//	/debug/traces/view?id=ID one trace's span bars and event ticks
//
// Responses are JSON (Content-Type: application/json) except the /view
// pages, which are self-contained HTML.

// traceSummary is one row of the JSON listing: everything needed to pick a
// trace without shipping its span tree.
type traceSummary struct {
	TraceID    string  `json:"trace_id"`
	Name       string  `json:"name"`
	Start      string  `json:"start"`
	DurationMS float64 `json:"duration_ms"`
	Error      string  `json:"error,omitempty"`
	SampledBy  string  `json:"sampled_by"`
	Spans      int     `json:"spans"`
	Events     int     `json:"events"`
}

func summarize(t *Trace) traceSummary {
	events := 0
	for _, s := range t.Spans {
		events += len(s.Events)
	}
	return traceSummary{
		TraceID:    t.TraceID,
		Name:       t.Name,
		Start:      t.Start.Format("2006-01-02T15:04:05.000Z07:00"),
		DurationMS: t.DurationMS,
		Error:      t.Error,
		SampledBy:  t.SampledBy,
		Spans:      len(t.Spans),
		Events:     events,
	}
}

// listParams parses the shared ?limit= / ?min_ms= query parameters,
// clamping limit to the ring size.
func listParams(r *http.Request, store *TraceStore) (limit int, minMS float64, err error) {
	limit = store.Capacity()
	if v := r.URL.Query().Get("limit"); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil || n < 0 {
			return 0, 0, fmt.Errorf("bad limit %q", v)
		}
		if n > 0 && n < limit {
			limit = n
		}
	}
	if v := r.URL.Query().Get("min_ms"); v != "" {
		f, perr := strconv.ParseFloat(v, 64)
		if perr != nil || f < 0 {
			return 0, 0, fmt.Errorf("bad min_ms %q", v)
		}
		minMS = f
	}
	return limit, minMS, nil
}

func writeTraceJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// traceError is the JSON error body of the trace endpoints.
type traceError struct {
	Error string `json:"error"`
}

// TraceHandler serves the JSON trace API for a store (see the file
// comment for the query parameters). A nil store serves empty listings.
func TraceHandler(store *TraceStore) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if id := r.URL.Query().Get("id"); id != "" {
			t, ok := store.Get(id)
			if !ok {
				writeTraceJSON(w, http.StatusNotFound, traceError{Error: fmt.Sprintf("no retained trace %q (the ring keeps the newest %d)", id, store.Capacity())})
				return
			}
			writeTraceJSON(w, http.StatusOK, t)
			return
		}
		limit, minMS, err := listParams(r, store)
		if err != nil {
			writeTraceJSON(w, http.StatusBadRequest, traceError{Error: err.Error()})
			return
		}
		traces := store.List(limit, minMS)
		out := make([]traceSummary, 0, len(traces))
		for _, t := range traces {
			out = append(out, summarize(t))
		}
		writeTraceJSON(w, http.StatusOK, out)
	})
}

// The waterfall templates are dependency-free HTML: span bars positioned
// by percentage offsets, event ticks as thin absolute divs. html/template
// escapes every interpolated value.
var traceListTmpl = template.Must(template.New("list").Parse(`<!DOCTYPE html>
<html><head><title>ceps traces</title><style>
body{font-family:monospace;margin:1.5em;background:#fafafa;color:#222}
table{border-collapse:collapse;width:100%}
td,th{padding:.3em .8em;border-bottom:1px solid #ddd;text-align:left;font-size:13px}
tr.err td{background:#fdecea}
a{color:#0b57d0;text-decoration:none}
.bar{background:#0b57d0;height:8px;display:inline-block;vertical-align:middle}
small{color:#777}
</style></head><body>
<h2>traces <small>({{.Len}} retained of {{.Cap}} capacity)</small></h2>
<table><tr><th>trace</th><th>name</th><th>start</th><th>duration</th><th>spans</th><th>sampled by</th><th></th></tr>
{{range .Rows}}<tr{{if .Error}} class="err"{{end}}>
<td><a href="?id={{.TraceID}}">{{.TraceID}}</a></td>
<td>{{.Name}}</td><td>{{.Start}}</td>
<td>{{printf "%.3f" .DurationMS}}ms <span class="bar" style="width:{{.BarPct}}%"></span></td>
<td>{{.Spans}}</td><td>{{.SampledBy}}</td><td>{{.Error}}</td>
</tr>{{end}}
</table></body></html>`))

var traceDetailTmpl = template.Must(template.New("detail").Parse(`<!DOCTYPE html>
<html><head><title>trace {{.TraceID}}</title><style>
body{font-family:monospace;margin:1.5em;background:#fafafa;color:#222}
a{color:#0b57d0;text-decoration:none}
.lane{position:relative;height:22px;margin:2px 0;background:#f0f0f0}
.lane .bar{position:absolute;top:3px;height:16px;background:#7aa5e8;border:1px solid #4a7bc8;box-sizing:border-box}
.lane .bar.err{background:#e89a9a;border-color:#c84a4a}
.lane .tick{position:absolute;top:0;width:1px;height:22px;background:#1a3f77;opacity:.65}
.lane .label{position:absolute;top:4px;left:4px;font-size:11px;white-space:nowrap;z-index:2}
.meta{font-size:12px;color:#555;margin:.2em 0 .8em}
pre{background:#f0f0f0;padding:.8em;font-size:12px;overflow-x:auto}
.depth{display:inline-block}
</style></head><body>
<p><a href="{{.Back}}">&larr; all traces</a></p>
<h2>trace {{.TraceID}} — {{.Name}}</h2>
<div class="meta">start {{.Start}} · {{printf "%.3f" .DurationMS}}ms · sampled by {{.SampledBy}}{{if .Error}} · error: {{.Error}}{{end}}</div>
{{range .Rows}}
<div class="meta" style="margin:0;padding-left:{{.Indent}}em">{{.Name}} — {{printf "%.3f" .DurationMS}}ms{{if .Error}} · error: {{.Error}}{{end}}{{if .Attrs}} · {{.Attrs}}{{end}}{{if .Events}} · {{.Events}} events{{if .Dropped}} (+{{.Dropped}} dropped){{end}}{{end}}</div>
<div class="lane"><div class="bar{{if .Error}} err{{end}}" style="left:{{.LeftPct}}%;width:{{.WidthPct}}%"></div>
{{range .Ticks}}<div class="tick" style="left:{{.}}%"></div>{{end}}</div>
{{end}}
</body></html>`))

// waterRow is one rendered span lane of the waterfall.
type waterRow struct {
	Name       string
	Indent     int
	DurationMS float64
	Error      string
	Attrs      string
	Events     int
	Dropped    int
	LeftPct    float64
	WidthPct   float64
	Ticks      []float64
}

// TraceViewHandler serves the HTML waterfall for a store. A nil store
// serves an empty listing.
func TraceViewHandler(store *TraceStore) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if id := r.URL.Query().Get("id"); id != "" {
			t, ok := store.Get(id)
			if !ok {
				http.Error(w, fmt.Sprintf("no retained trace %q", id), http.StatusNotFound)
				return
			}
			_ = traceDetailTmpl.Execute(w, detailPage(t, r.URL.Path))
			return
		}
		limit, minMS, err := listParams(r, store)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		traces := store.List(limit, minMS)
		maxMS := 0.0
		for _, t := range traces {
			if t.DurationMS > maxMS {
				maxMS = t.DurationMS
			}
		}
		type row struct {
			traceSummary
			BarPct float64
		}
		page := struct {
			Len, Cap int
			Rows     []row
		}{Len: store.Len(), Cap: store.Capacity()}
		for _, t := range traces {
			pct := 0.0
			if maxMS > 0 {
				pct = t.DurationMS / maxMS * 30
			}
			page.Rows = append(page.Rows, row{summarize(t), pct})
		}
		_ = traceListTmpl.Execute(w, page)
	})
}

// detailPage lays the span tree out as waterfall rows: children indented
// under their parent, bars as percentage offsets of the root duration,
// events as ticks.
func detailPage(t *Trace, back string) any {
	total := t.DurationMS
	if total <= 0 {
		total = 1e-6
	}
	children := make(map[uint64][]SpanData)
	for _, s := range t.Spans {
		children[s.ParentID] = append(children[s.ParentID], s)
	}
	for _, kids := range children {
		sort.SliceStable(kids, func(i, j int) bool { return kids[i].StartMS < kids[j].StartMS })
	}
	var rows []waterRow
	var walk func(parent uint64, depth int)
	walk = func(parent uint64, depth int) {
		for _, s := range children[parent] {
			row := waterRow{
				Name:       s.Name,
				Indent:     depth,
				DurationMS: s.DurationMS,
				Error:      s.Error,
				Attrs:      renderAttrs(s.Attrs),
				Events:     len(s.Events),
				Dropped:    s.DroppedEvents,
				LeftPct:    clampPct(s.StartMS / total * 100),
				WidthPct:   clampPct(s.DurationMS / total * 100),
			}
			if row.WidthPct < 0.2 {
				row.WidthPct = 0.2 // keep instant spans visible
			}
			for _, ev := range s.Events {
				row.Ticks = append(row.Ticks, clampPct(ev.OffsetMS/total*100))
			}
			rows = append(rows, row)
			walk(s.SpanID, depth+1)
		}
	}
	walk(0, 0)
	return struct {
		TraceID, Name, Start, SampledBy, Error, Back string
		DurationMS                                   float64
		Rows                                         []waterRow
	}{
		TraceID:    t.TraceID,
		Name:       t.Name,
		Start:      t.Start.Format("2006-01-02T15:04:05.000Z07:00"),
		SampledBy:  t.SampledBy,
		Error:      t.Error,
		Back:       back,
		DurationMS: t.DurationMS,
		Rows:       rows,
	}
}

func clampPct(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 100 {
		return 100
	}
	return p
}

// renderAttrs renders a span's attributes as a compact k=v listing in
// sorted key order.
func renderAttrs(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%v", k, attrs[k])
	}
	return out
}
