package obs

import (
	"sync"
	"time"
)

// Trace is one finished, immutable trace: the snapshot a Tracer stores
// when the sampling verdict says keep. Field names are stable — the
// /debug/traces JSON is an operator-facing contract.
type Trace struct {
	// TraceID is the 16-hex-digit id (the X-Ceps-Trace-Id header value).
	TraceID string `json:"trace_id"`
	// Name is the root span's name.
	Name string `json:"name"`
	// Start is when the root span opened.
	Start time.Time `json:"start"`
	// DurationMS is the root span's wall time in milliseconds.
	DurationMS float64 `json:"duration_ms"`
	// Error is the root span's error message, "" on success.
	Error string `json:"error,omitempty"`
	// SampledBy says which rule kept the trace: "probability" (the head
	// coin), "slow" (the always-on slow threshold), or "error".
	SampledBy string `json:"sampled_by"`
	// Spans is the span tree in start order; the root has ParentID 0.
	Spans []SpanData `json:"spans"`
}

// SpanData is one finished span of a Trace.
type SpanData struct {
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	// StartMS is the span's offset from the trace start in milliseconds.
	StartMS    float64 `json:"start_ms"`
	DurationMS float64 `json:"duration_ms"`
	Error      string  `json:"error,omitempty"`
	// Attrs are the span's attributes (repeated keys: last write wins).
	Attrs map[string]any `json:"attrs,omitempty"`
	// Events are the span's point events (per-sweep convergence, EXTRACT
	// destination picks), bounded per span; DroppedEvents counts the rest.
	Events        []EventData `json:"events,omitempty"`
	DroppedEvents int         `json:"dropped_events,omitempty"`
}

// EventData is one point event of a span.
type EventData struct {
	// OffsetMS is the event's offset from the trace start in milliseconds.
	OffsetMS float64        `json:"offset_ms"`
	Name     string         `json:"name"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// TraceStoreStats is a snapshot of a TraceStore's counters.
type TraceStoreStats struct {
	// Added counts every trace ever stored; Evicted counts those the ring
	// overwrote. Len and Capacity describe the current residency.
	Added, Evicted uint64
	Len, Capacity  int
}

// TraceStore is a fixed-capacity concurrent ring buffer of finished
// traces: the newest Capacity kept traces are retrievable by id or listed
// newest-first. Stores and reads are safe for concurrent use; stored
// traces are immutable, so readers share them without copying.
type TraceStore struct {
	mu      sync.Mutex
	buf     []*Trace
	next    int // ring write position
	count   int // residents, <= len(buf)
	added   uint64
	evicted uint64
}

// NewTraceStore returns a ring retaining up to capacity traces;
// capacity <= 0 means DefaultTraceBuffer.
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = DefaultTraceBuffer
	}
	return &TraceStore{buf: make([]*Trace, capacity)}
}

// Capacity returns the ring size.
func (s *TraceStore) Capacity() int {
	if s == nil {
		return 0
	}
	return len(s.buf)
}

// Len returns how many traces are currently retained.
func (s *TraceStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Stats returns a snapshot of the store counters.
func (s *TraceStore) Stats() TraceStoreStats {
	if s == nil {
		return TraceStoreStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return TraceStoreStats{Added: s.added, Evicted: s.evicted, Len: s.count, Capacity: len(s.buf)}
}

// Add stores one finished trace, overwriting the oldest resident when the
// ring is full.
func (s *TraceStore) Add(t *Trace) {
	if s == nil || t == nil {
		return
	}
	s.mu.Lock()
	if s.buf[s.next] != nil {
		s.evicted++
	} else {
		s.count++
	}
	s.buf[s.next] = t
	s.next = (s.next + 1) % len(s.buf)
	s.added++
	s.mu.Unlock()
}

// Get returns the retained trace with the given id.
func (s *TraceStore) Get(id string) (*Trace, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.buf {
		if t != nil && t.TraceID == id {
			return t, true
		}
	}
	return nil, false
}

// List returns up to limit retained traces, newest first, keeping only
// those with DurationMS >= minMS. limit <= 0 or beyond the ring capacity
// means the whole ring.
func (s *TraceStore) List(limit int, minMS float64) []*Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if limit <= 0 || limit > len(s.buf) {
		limit = len(s.buf)
	}
	out := make([]*Trace, 0, min(limit, s.count))
	// Walk backwards from the most recent write position.
	for i := 1; i <= len(s.buf) && len(out) < limit; i++ {
		t := s.buf[(s.next-i+len(s.buf))%len(s.buf)]
		if t == nil {
			break // ring not yet full: older slots are all empty
		}
		if t.DurationMS >= minMS {
			out = append(out, t)
		}
	}
	return out
}
