package bipartite

import (
	"math"
	"math/rand"
	"testing"
)

func build(t *testing.T, papers [][]int) *Graph {
	t.Helper()
	b := NewBuilder(0)
	for _, p := range papers {
		if _, err := b.AddPaper(p); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderBasics(t *testing.T) {
	g := build(t, [][]int{
		{0, 1},
		{0, 1, 2},
		{2, 3},
		{1, 1, 0}, // duplicate author collapses
	})
	if g.Authors() != 4 || g.Papers() != 4 {
		t.Fatalf("authors=%d papers=%d", g.Authors(), g.Papers())
	}
	if g.PaperCount(0) != 3 || g.PaperCount(3) != 1 {
		t.Fatalf("paper counts wrong: %d %d", g.PaperCount(0), g.PaperCount(3))
	}
	if got := g.PaperAuthors(3); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("paper 3 authors = %v", got)
	}
	if g.CoAuthoredPapers(0, 1) != 3 {
		t.Fatalf("CoAuthoredPapers(0,1) = %d, want 3", g.CoAuthoredPapers(0, 1))
	}
	if g.CoAuthoredPapers(0, 3) != 0 {
		t.Fatalf("CoAuthoredPapers(0,3) = %d, want 0", g.CoAuthoredPapers(0, 3))
	}
	h := g.TeamSizeHistogram()
	if h[2] != 3 || h[3] != 1 {
		t.Fatalf("team size histogram = %v", h)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(2)
	if _, err := b.AddPaper(nil); err == nil {
		t.Error("empty paper should fail")
	}
	if _, err := b.AddPaper([]int{-1}); err == nil {
		t.Error("negative author should fail")
	}
	if _, err := (&Builder{}).Build(); err == nil {
		t.Error("no papers should fail")
	}
}

func TestProjectUnitMatchesPaperConvention(t *testing.T) {
	g := build(t, [][]int{
		{0, 1},
		{0, 1, 2},
		{1, 2},
	})
	proj, err := g.Project(UnitWeighting, nil)
	if err != nil {
		t.Fatal(err)
	}
	// (0,1): papers 0 and 1 → weight 2; (1,2): papers 1 and 2 → weight 2;
	// (0,2): paper 1 only → weight 1.
	if proj.Weight(0, 1) != 2 || proj.Weight(1, 2) != 2 || proj.Weight(0, 2) != 1 {
		t.Fatalf("projection weights: %v %v %v",
			proj.Weight(0, 1), proj.Weight(1, 2), proj.Weight(0, 2))
	}
	// Projection weight always equals CoAuthoredPapers under unit weights.
	for a := 0; a < g.Authors(); a++ {
		for b := a + 1; b < g.Authors(); b++ {
			if int(proj.Weight(a, b)) != g.CoAuthoredPapers(a, b) {
				t.Fatalf("(%d,%d): projection %v vs count %d", a, b, proj.Weight(a, b), g.CoAuthoredPapers(a, b))
			}
		}
	}
}

func TestProjectFractionalDiscountsBigTeams(t *testing.T) {
	g := build(t, [][]int{
		{0, 1},          // contributes 1 to (0,1)
		{0, 1, 2, 3, 4}, // contributes 1/4 per pair
	})
	proj, err := g.Project(FractionalWeighting, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(proj.Weight(0, 1)-1.25) > 1e-12 {
		t.Fatalf("weight(0,1) = %v, want 1.25", proj.Weight(0, 1))
	}
	if math.Abs(proj.Weight(2, 3)-0.25) > 1e-12 {
		t.Fatalf("weight(2,3) = %v, want 0.25", proj.Weight(2, 3))
	}
	// Solo papers contribute nothing and must not break projection.
	g2 := build(t, [][]int{{0}, {0, 1}})
	proj2, err := g2.Project(FractionalWeighting, nil)
	if err != nil {
		t.Fatal(err)
	}
	if proj2.Weight(0, 1) != 1 {
		t.Fatalf("solo paper affected projection: %v", proj2.Weight(0, 1))
	}
}

func TestProjectLabels(t *testing.T) {
	g := build(t, [][]int{{0, 1}})
	proj, err := g.Project(nil, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if proj.Label(0) != "a" || proj.Label(1) != "b" {
		t.Fatal("labels not carried")
	}
	if _, err := g.Project(nil, []string{"only-one"}); err == nil {
		t.Error("label length mismatch should fail")
	}
}

func TestProjectRandomConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder(60)
	for p := 0; p < 300; p++ {
		team := make([]int, 2+rng.Intn(4))
		for i := range team {
			team[i] = rng.Intn(60)
		}
		if _, err := b.AddPaper(team); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	proj, err := g.Project(UnitWeighting, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := proj.Validate(); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 60; a += 7 {
		for c := a + 1; c < 60; c += 5 {
			if int(proj.Weight(a, c)) != g.CoAuthoredPapers(a, c) {
				t.Fatalf("projection inconsistent at (%d,%d)", a, c)
			}
		}
	}
}

// TestFractionalWeightingSingleAuthor is the regression test for the
// teamSize = 1 degenerate input: 1/(teamSize-1) would be 1/0 = +Inf, which
// would poison every edge of the projected graph and every downstream
// random walk. The guard must return exactly 0 (skip the paper), and
// FractionalWeighting must never yield a non-finite weight for any team
// size.
func TestFractionalWeightingSingleAuthor(t *testing.T) {
	if got := FractionalWeighting(1); got != 0 {
		t.Fatalf("FractionalWeighting(1) = %v, want 0", got)
	}
	for _, k := range []int{-1, 0, 1, 2, 3, 50, 1 << 20} {
		w := FractionalWeighting(k)
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatalf("FractionalWeighting(%d) = %v, want finite", k, w)
		}
		if w < 0 {
			t.Fatalf("FractionalWeighting(%d) = %v, want non-negative", k, w)
		}
	}
}

// TestProjectFractionalSingleAuthorPapers projects a corpus that includes
// single-author papers under FractionalWeighting and asserts every
// resulting edge weight is finite and positive.
func TestProjectFractionalSingleAuthorPapers(t *testing.T) {
	g := build(t, [][]int{
		{0},       // single-author: contributes nothing
		{0, 1},    // weight 1
		{0, 1, 2}, // weight 1/2 per pair
		{3},       // isolated-by-projection author
	})
	pg, err := g.Project(FractionalWeighting, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range pg.Edges() {
		if math.IsNaN(e.W) || math.IsInf(e.W, 0) || e.W <= 0 {
			t.Fatalf("edge (%d,%d) weight %v, want finite positive", e.U, e.V, e.W)
		}
	}
	if got, want := pg.Weight(0, 1), 1.5; got != want {
		t.Fatalf("w(0,1) = %v, want %v", got, want)
	}
}

// TestProjectSkipsNonFiniteWeights audits Project against the same class
// of degenerate input arriving through a custom Weighting: NaN passes a
// plain `wt <= 0` check (all comparisons with NaN are false) and +Inf
// passes it too, so both must be skipped explicitly.
func TestProjectSkipsNonFiniteWeights(t *testing.T) {
	g := build(t, [][]int{
		{0, 1},    // poisoned by the custom weighting below
		{0, 1, 2}, // fine
	})
	poison := func(teamSize int) float64 {
		switch teamSize {
		case 2:
			return math.NaN()
		case 3:
			return 1
		default:
			return math.Inf(+1)
		}
	}
	pg, err := g.Project(poison, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range pg.Edges() {
		if math.IsNaN(e.W) || math.IsInf(e.W, 0) {
			t.Fatalf("edge (%d,%d) weight %v leaked a non-finite weight into the projection", e.U, e.V, e.W)
		}
	}
	// The NaN paper is dropped; only the 3-author paper contributes.
	if got := pg.Weight(0, 1); got != 1 {
		t.Fatalf("w(0,1) = %v, want 1 (NaN-weighted paper skipped)", got)
	}
	allInf := func(int) float64 { return math.Inf(+1) }
	if _, err := g.Project(allInf, nil); err != nil {
		t.Fatalf("Project with all-Inf weighting should yield an empty projection, got error %v", err)
	}
}
