// Package bipartite models the author–paper incidence structure that the
// CePS paper's evaluation graph is built from: "the author-paper
// information is used to construct the weighted graph W: every author is
// denoted as a node in W; and the edge weight is the number of co-authored
// papers between the corresponding two authors" (§7).
//
// Keeping the bipartite layer explicit (instead of only its co-authorship
// projection) lets the library ingest real author–paper dumps, supports
// alternative projection weightings used in bibliometrics (e.g. fractional
// counting, which discounts huge consortium papers), and gives the
// synthetic generator a faithful intermediate representation.
package bipartite

import (
	"fmt"
	"math"
	"sort"

	"ceps/internal/graph"
)

// Graph is an immutable bipartite author–paper incidence structure.
type Graph struct {
	authorPapers [][]int // author -> sorted paper ids
	paperAuthors [][]int // paper -> sorted author ids
}

// Builder accumulates papers.
type Builder struct {
	nAuthors int
	papers   [][]int
}

// NewBuilder returns a builder pre-sized for n authors.
func NewBuilder(nAuthors int) *Builder {
	return &Builder{nAuthors: nAuthors}
}

// AddPaper records a paper with the given author list and returns the
// paper id. Duplicate authors within one paper are collapsed; papers with
// no authors are rejected.
func (b *Builder) AddPaper(authors []int) (int, error) {
	if len(authors) == 0 {
		return 0, fmt.Errorf("bipartite: paper with no authors")
	}
	uniq := make([]int, 0, len(authors))
	seen := make(map[int]bool, len(authors))
	for _, a := range authors {
		if a < 0 {
			return 0, fmt.Errorf("bipartite: negative author id %d", a)
		}
		if a >= b.nAuthors {
			b.nAuthors = a + 1
		}
		if !seen[a] {
			seen[a] = true
			uniq = append(uniq, a)
		}
	}
	sort.Ints(uniq)
	b.papers = append(b.papers, uniq)
	return len(b.papers) - 1, nil
}

// Build finalizes the incidence structure.
func (b *Builder) Build() (*Graph, error) {
	if len(b.papers) == 0 {
		return nil, fmt.Errorf("bipartite: no papers")
	}
	g := &Graph{
		authorPapers: make([][]int, b.nAuthors),
		paperAuthors: make([][]int, len(b.papers)),
	}
	for p, authors := range b.papers {
		g.paperAuthors[p] = append([]int(nil), authors...)
		for _, a := range authors {
			g.authorPapers[a] = append(g.authorPapers[a], p)
		}
	}
	return g, nil
}

// Authors returns the number of authors.
func (g *Graph) Authors() int { return len(g.authorPapers) }

// Papers returns the number of papers.
func (g *Graph) Papers() int { return len(g.paperAuthors) }

// PaperAuthors returns the author list of paper p (view; do not modify).
func (g *Graph) PaperAuthors(p int) []int { return g.paperAuthors[p] }

// AuthorPapers returns the paper list of author a (view; do not modify).
func (g *Graph) AuthorPapers(a int) []int { return g.authorPapers[a] }

// PaperCount returns how many papers author a has.
func (g *Graph) PaperCount(a int) int { return len(g.authorPapers[a]) }

// Weighting maps a paper's team size to the weight each co-author pair on
// that paper contributes to the projection.
type Weighting func(teamSize int) float64

// UnitWeighting is the paper's convention: every co-authored paper adds 1
// to the pair's edge weight.
func UnitWeighting(int) float64 { return 1 }

// FractionalWeighting is the bibliometric alternative: a paper with k
// authors contributes 1/(k−1) per pair, so a two-author paper counts fully
// while a 50-author consortium paper contributes little to each pair —
// another way to blunt the "pizza delivery person" effect before the walk
// even starts.
func FractionalWeighting(teamSize int) float64 {
	if teamSize <= 1 {
		return 0
	}
	return 1 / float64(teamSize-1)
}

// Project builds the weighted co-authorship graph: nodes are authors,
// the weight of (a, b) is Σ over shared papers of w(teamSize). Labels may
// be nil.
func (g *Graph) Project(w Weighting, labels []string) (*graph.Graph, error) {
	if w == nil {
		w = UnitWeighting
	}
	b := graph.NewBuilder(g.Authors())
	if labels != nil {
		if len(labels) != g.Authors() {
			return nil, fmt.Errorf("bipartite: %d labels for %d authors", len(labels), g.Authors())
		}
		for i, l := range labels {
			b.SetLabel(i, l)
		}
	}
	for _, authors := range g.paperAuthors {
		wt := w(len(authors))
		// Skip non-positive AND non-finite weights. A custom Weighting that
		// divides by teamSize-1 without a guard yields +Inf (or NaN via
		// 0·Inf downstream) on single-author papers; NaN in particular
		// passes a plain `wt <= 0` check (all comparisons with NaN are
		// false) and would poison the projection and every walk on it.
		if !(wt > 0) || math.IsInf(wt, +1) {
			continue
		}
		for i := 0; i < len(authors); i++ {
			for j := i + 1; j < len(authors); j++ {
				b.AddEdge(authors[i], authors[j], wt)
			}
		}
	}
	return b.Build()
}

// CoAuthoredPapers counts the papers authors a and b share (the unit
// projection weight, computable without building the projection).
func (g *Graph) CoAuthoredPapers(a, b int) int {
	pa, pb := g.authorPapers[a], g.authorPapers[b]
	i, j, n := 0, 0, 0
	for i < len(pa) && j < len(pb) {
		switch {
		case pa[i] == pb[j]:
			n++
			i++
			j++
		case pa[i] < pb[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// TeamSizeHistogram returns counts of papers per team size.
func (g *Graph) TeamSizeHistogram() map[int]int {
	h := make(map[int]int)
	for _, authors := range g.paperAuthors {
		h[len(authors)]++
	}
	return h
}
