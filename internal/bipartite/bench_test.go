package bipartite

import (
	"math/rand"
	"testing"
)

func benchIncidence(b *testing.B) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	bb := NewBuilder(5000)
	for p := 0; p < 20000; p++ {
		team := make([]int, 2+rng.Intn(4))
		for i := range team {
			team[i] = rng.Intn(5000)
		}
		if _, err := bb.AddPaper(team); err != nil {
			b.Fatal(err)
		}
	}
	g, err := bb.Build()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkProjectUnit(b *testing.B) {
	g := benchIncidence(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Project(UnitWeighting, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoAuthoredPapers(b *testing.B) {
	g := benchIncidence(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CoAuthoredPapers(i%5000, (i*7)%5000)
	}
}
