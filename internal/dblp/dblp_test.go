package dblp

import (
	"math/rand"
	"testing"
)

// smallConfig keeps tests fast.
func smallConfig(seed int64) Config {
	return Config{
		Seed: seed,
		Communities: []Community{
			{Name: "db", Authors: 150, Papers: 450, RepositorySize: 13},
			{Name: "ml", Authors: 150, Papers: 450, RepositorySize: 13},
			{Name: "ir", Authors: 100, Papers: 300, RepositorySize: 11},
			{Name: "cv", Authors: 100, Papers: 300, RepositorySize: 11},
		},
		MinTeam:           2,
		MaxTeam:           5,
		CrossProb:         0.05,
		ZipfS:             1.6,
		ConnectorsPerPair: 2,
		ConnectorPapers:   6,
	}
}

func TestGenerateBasicShape(t *testing.T) {
	ds, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Graph.N() != 500 {
		t.Fatalf("N = %d, want 500", ds.Graph.N())
	}
	if ds.Graph.M() == 0 {
		t.Fatal("no edges generated")
	}
	if err := ds.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.PaperCount < 1500 {
		t.Fatalf("paper count %d too small", ds.PaperCount)
	}
	if !ds.Graph.Labeled() {
		t.Fatal("authors should be labeled")
	}
	// Labels are unique.
	seen := make(map[string]bool, ds.Graph.N())
	for u := 0; u < ds.Graph.N(); u++ {
		l := ds.Graph.Label(u)
		if seen[l] {
			t.Fatalf("duplicate author name %q", l)
		}
		seen[l] = true
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.M() != b.Graph.M() || a.Graph.TotalWeight() != b.Graph.TotalWeight() {
		t.Fatal("same seed produced different graphs")
	}
	c, err := Generate(smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.M() == c.Graph.M() && a.Graph.TotalWeight() == c.Graph.TotalWeight() {
		t.Fatal("different seeds suspiciously identical")
	}
}

func TestCommunityAssignmentContiguous(t *testing.T) {
	ds, err := Generate(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{150, 150, 100, 100}
	counts := make([]int, 4)
	for _, ci := range ds.CommunityOf {
		counts[ci]++
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("community %d has %d authors, want %d", i, counts[i], want[i])
		}
	}
}

func TestCommunityStructureDominatesEdges(t *testing.T) {
	ds, err := Generate(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	var intra, inter float64
	ds.Graph.ForEachEdge(func(u, v int, w float64) {
		if ds.CommunityOf[u] == ds.CommunityOf[v] {
			intra += w
		} else {
			inter += w
		}
	})
	if intra < 5*inter {
		t.Fatalf("intra %v vs inter %v: community structure too weak", intra, inter)
	}
	if inter == 0 {
		t.Fatal("communities must be linked (cross papers + connectors)")
	}
}

func TestProductivityIsHeavyTailed(t *testing.T) {
	ds, err := Generate(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	// Top 10% of authors should hold a large multiple of their uniform
	// share of the total weighted degree.
	degs := make([]float64, g.N())
	var total float64
	for u := 0; u < g.N(); u++ {
		degs[u] = g.WeightedDegree(u)
		total += degs[u]
	}
	// partial selection: count mass above the 90th percentile by sorting
	sorted := append([]float64(nil), degs...)
	for i := 1; i < len(sorted); i++ { // insertion sort is fine at n=500
		v := sorted[i]
		j := i - 1
		for j >= 0 && sorted[j] < v {
			sorted[j+1] = sorted[j]
			j--
		}
		sorted[j+1] = v
	}
	top := len(sorted) / 10
	var topMass float64
	for i := 0; i < top; i++ {
		topMass += sorted[i]
	}
	if frac := topMass / total; frac < 0.3 {
		t.Fatalf("top-10%% degree share = %.2f; productivity should be heavy-tailed", frac)
	}
}

func TestRepositoryHoldsProlificAuthors(t *testing.T) {
	ds, err := Generate(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{13, 13, 11, 11}
	for ci, repo := range ds.Repository {
		if len(repo) != sizes[ci] {
			t.Fatalf("repository %d size = %d, want %d", ci, len(repo), sizes[ci])
		}
		for i, a := range repo {
			if ds.CommunityOf[a] != ci {
				t.Fatalf("repository %d contains foreign author %d", ci, a)
			}
			if i > 0 && ds.Graph.WeightedDegree(repo[i-1]) < ds.Graph.WeightedDegree(a) {
				t.Fatalf("repository %d not sorted by degree", ci)
			}
		}
		// Repository members should be well above the community median.
		med := medianDegreeOf(ds, ci)
		if ds.Graph.WeightedDegree(repo[0]) < 2*med {
			t.Fatalf("top repository author not prolific: %v vs median %v",
				ds.Graph.WeightedDegree(repo[0]), med)
		}
	}
}

func medianDegreeOf(ds *Dataset, ci int) float64 {
	var degs []float64
	for u := 0; u < ds.Graph.N(); u++ {
		if ds.CommunityOf[u] == ci {
			degs = append(degs, ds.Graph.WeightedDegree(u))
		}
	}
	for i := 1; i < len(degs); i++ {
		v := degs[i]
		j := i - 1
		for j >= 0 && degs[j] > v {
			degs[j+1] = degs[j]
			j--
		}
		degs[j+1] = v
	}
	return degs[len(degs)/2]
}

func TestConnectorsBridgeCommunities(t *testing.T) {
	ds, err := Generate(smallConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Connectors) != 2*3 { // ConnectorsPerPair=2, 3 adjacent pairs
		t.Fatalf("connectors = %d, want 6", len(ds.Connectors))
	}
	for _, conn := range ds.Connectors {
		home := ds.CommunityOf[conn]
		foreign := 0
		nbrs, _ := ds.Graph.Neighbors(conn)
		for _, v := range nbrs {
			if ds.CommunityOf[v] != home {
				foreign++
			}
		}
		if foreign < 3 {
			t.Fatalf("connector %d has only %d foreign co-authors", conn, foreign)
		}
	}
}

func TestRandomQueries(t *testing.T) {
	ds, err := Generate(smallConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	qs, err := ds.RandomQueries(rng, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 4 {
		t.Fatalf("got %d queries", len(qs))
	}
	seen := make(map[int]bool)
	for _, q := range qs {
		if seen[q] {
			t.Fatal("duplicate query")
		}
		seen[q] = true
	}
	if _, err := ds.RandomQueries(rng, 0, false); err == nil {
		t.Error("q=0 should fail")
	}
	if _, err := ds.RandomQueries(rng, 10_000, false); err == nil {
		t.Error("oversized q should fail")
	}
}

func TestGenerateValidation(t *testing.T) {
	cfg := smallConfig(1)
	cfg.Communities[0].Authors = 3 // below MaxTeam
	if _, err := Generate(cfg); err == nil {
		t.Error("tiny community should fail")
	}
	cfg = smallConfig(1)
	cfg.Communities[1].Papers = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("zero papers should fail")
	}
}

func TestBipartiteProjectionConsistency(t *testing.T) {
	ds, err := Generate(smallConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Papers == nil {
		t.Fatal("dataset should carry the author–paper incidence")
	}
	if ds.Papers.Papers() != ds.PaperCount {
		t.Fatalf("paper count %d vs incidence %d", ds.PaperCount, ds.Papers.Papers())
	}
	if ds.Papers.Authors() != ds.Graph.N() {
		t.Fatalf("author count mismatch: %d vs %d", ds.Papers.Authors(), ds.Graph.N())
	}
	// Every co-authorship edge weight is exactly the shared paper count.
	checked := 0
	ds.Graph.ForEachEdge(func(u, v int, w float64) {
		if checked < 500 { // spot check; CoAuthoredPapers is O(papers)
			if int(w) != ds.Papers.CoAuthoredPapers(u, v) {
				t.Fatalf("edge (%d,%d) weight %v vs %d shared papers",
					u, v, w, ds.Papers.CoAuthoredPapers(u, v))
			}
			checked++
		}
	})
	// Everybody authored at least one paper (the no-isolated-authors
	// property of the generator).
	for a := 0; a < ds.Papers.Authors(); a++ {
		if ds.Papers.PaperCount(a) == 0 {
			t.Fatalf("author %d has no papers", a)
		}
	}
}

func TestScale(t *testing.T) {
	cfg := Scale(DefaultConfig(), 0.1)
	for i, c := range cfg.Communities {
		want := int(float64(DefaultConfig().Communities[i].Authors) * 0.1)
		if c.Authors != want {
			t.Fatalf("scaled authors = %d, want %d", c.Authors, want)
		}
	}
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Graph.N() != 400 {
		t.Fatalf("scaled N = %d, want 400", ds.Graph.N())
	}
}

func TestDefaultConfigGenerates(t *testing.T) {
	if testing.Short() {
		t.Skip("default-size generation skipped in -short")
	}
	ds, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ds.Graph.N() != 4000 {
		t.Fatalf("N = %d, want 4000", ds.Graph.N())
	}
	comp, count := ds.Graph.ConnectedComponents()
	_ = comp
	// The giant component should dominate; a few isolated authors are fine.
	if count > ds.Graph.N()/2 {
		t.Fatalf("graph too fragmented: %d components", count)
	}
}
