package dblp

import "testing"

func BenchmarkGenerate(b *testing.B) {
	cfg := Scale(DefaultConfig(), 0.5)
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
