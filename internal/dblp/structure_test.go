package dblp

import (
	"testing"

	"ceps/internal/graphstat"
)

// TestGeneratorStructureClass pins the structural properties DESIGN.md's
// substitution argument relies on: the synthetic graph must look like a
// co-authorship network — heavy-tailed degrees with a sane power-law
// exponent, strong local clustering (research groups), and one giant
// component.
func TestGeneratorStructureClass(t *testing.T) {
	ds, err := Generate(smallConfig(77))
	if err != nil {
		t.Fatal(err)
	}
	s := graphstat.Compute(ds.Graph)

	if s.TailExponent < 1.5 || s.TailExponent > 4.5 {
		t.Errorf("degree tail exponent %.2f outside the social-network range [1.5, 4.5]", s.TailExponent)
	}
	if s.MeanLocalClustering < 0.3 {
		t.Errorf("mean local clustering %.3f too low; co-authorship graphs are locally dense", s.MeanLocalClustering)
	}
	if s.GiantShare < 0.9 {
		t.Errorf("giant component holds only %.2f of nodes", s.GiantShare)
	}
	if s.MaxDegree < 5*s.DegreeP50 {
		t.Errorf("max degree %d vs median %d: hubs missing", s.MaxDegree, s.DegreeP50)
	}
	if s.MeanDegree < 2 {
		t.Errorf("mean degree %.1f too sparse", s.MeanDegree)
	}
}

// TestMegaHubsDominateDegree confirms the planted "pizza delivery persons"
// really are the extreme-degree nodes the §4.3 normalization targets.
func TestMegaHubsDominateDegree(t *testing.T) {
	cfg := smallConfig(78)
	cfg.MegaHubsPerCommunity = 2
	// The test communities are small (100–150 authors); use the fanout a
	// default-scale community would get so the hubs are unmistakable.
	cfg.MegaHubFanout = 0.6
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.MegaHubs) != 2*len(cfg.Communities) {
		t.Fatalf("mega hubs = %d", len(ds.MegaHubs))
	}
	// Every mega hub must sit far above its community's median degree.
	for _, hub := range ds.MegaHubs {
		ci := ds.CommunityOf[hub]
		med := medianDegreeOf(ds, ci)
		if ds.Graph.WeightedDegree(hub) < 3*med {
			t.Errorf("mega hub %d degree %.0f not hubby (community median %.0f)",
				hub, ds.Graph.WeightedDegree(hub), med)
		}
	}
	// And they are excluded from the repository.
	for _, repo := range ds.Repository {
		for _, a := range repo {
			for _, hub := range ds.MegaHubs {
				if a == hub {
					t.Fatalf("mega hub %d leaked into the repository", hub)
				}
			}
		}
	}
}
