package dblp

import (
	"fmt"
	"math/rand"
)

// Synthetic author names: pronounceable, deterministic under the dataset
// seed, and globally unique thanks to the community/index suffix encoded as
// initials. They make the case-study examples readable without borrowing
// any real researcher's name.

var givenNames = []string{
	"Ada", "Ben", "Chen", "Dana", "Elif", "Femi", "Goro", "Hana",
	"Igor", "Jun", "Kira", "Liam", "Mei", "Nils", "Omar", "Priya",
	"Quinn", "Rosa", "Sven", "Tara", "Uma", "Vik", "Wen", "Xia",
	"Yara", "Zane",
}

var surnameHeads = []string{
	"Bal", "Cor", "Dal", "Fen", "Gar", "Hol", "Jin", "Kov",
	"Lam", "Mor", "Nak", "Ols", "Pet", "Ros", "Sar", "Tan",
	"Ved", "Wal", "Yam", "Zel",
}

var surnameTails = []string{
	"akis", "berg", "chev", "dano", "ero", "ford", "gupta", "hara",
	"inski", "jona", "karov", "lund", "mann", "nova", "oso", "pulos",
	"quist", "rossi", "sen", "tti",
}

// communityTag gives each community a distinct middle initial so labels
// hint at their community in example output.
var communityTags = []string{"D", "S", "I", "V", "W", "X", "Y", "Z"}

// authorName generates a deterministic, unique display name for the a-th
// author of community ci.
func authorName(rng *rand.Rand, ci, a int) string {
	g := givenNames[rng.Intn(len(givenNames))]
	s := surnameHeads[rng.Intn(len(surnameHeads))] + surnameTails[rng.Intn(len(surnameTails))]
	tag := communityTags[ci%len(communityTags)]
	// The numeric suffix guarantees uniqueness; the tag hints at community.
	return fmt.Sprintf("%s %s.%s-%d", g, tag, s, a)
}
