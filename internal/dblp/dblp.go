// Package dblp generates synthetic DBLP-style co-authorship graphs.
//
// The paper's evaluation (§7) runs on the real DBLP author graph: ~315K
// authors, ~1,834K weighted edges where the weight of (a, b) is the number
// of papers a and b co-authored, and a query repository of researchers
// drawn from four research communities (13 database/mining, 13
// statistics/ML, 11 information retrieval, 11 computer vision). That dump
// is not available here, so this package builds the closest synthetic
// equivalent with the structural properties the experiments depend on:
//
//   - community structure: papers are written inside a home community with
//     occasional cross-community collaborations, giving the clustered
//     topology Fast CePS's pre-partition exploits;
//   - heavy-tailed productivity: authors per community are sampled from a
//     Zipf distribution, so a few prolific authors become hubs — exactly
//     the "pizza delivery person" effect §4.3's normalization targets;
//   - integer co-paper edge weights accumulated per collaboration;
//   - planted cross-disciplinary connectors: authors who publish in two
//     communities, the ground-truth "center-pieces" of the Fig. 1 and
//     Fig. 3 case studies;
//   - a per-community query repository of the most prolific authors,
//     mirroring the paper's 13/13/11/11 selection.
//
// Generation is deterministic for a fixed Config.Seed.
package dblp

import (
	"fmt"
	"math/rand"
	"sort"

	"ceps/internal/bipartite"
	"ceps/internal/graph"
)

// Community describes one research community to synthesize.
type Community struct {
	// Name labels the community (e.g. "databases & mining").
	Name string
	// Authors is the number of authors in the community.
	Authors int
	// Papers is the number of papers generated inside the community.
	Papers int
	// RepositorySize is how many of the community's most prolific authors
	// enter the query repository (the paper uses 13/13/11/11).
	RepositorySize int
}

// Config parameterizes the generator.
type Config struct {
	// Seed drives all randomness; equal seeds give identical datasets.
	Seed int64
	// Communities to generate. Defaults to the paper's four.
	Communities []Community
	// MinTeam and MaxTeam bound the number of authors on a paper
	// (defaults 2 and 5).
	MinTeam, MaxTeam int
	// CrossProb is the probability that a paper includes one author from
	// a neighboring community (default 0.05).
	CrossProb float64
	// ZipfS is the Zipf exponent for author productivity (must be > 1;
	// default 1.6). Larger values concentrate papers on fewer authors.
	ZipfS float64
	// ConnectorsPerPair plants this many cross-disciplinary authors for
	// each pair of adjacent communities (default 3).
	ConnectorsPerPair int
	// ConnectorPapers is how many bridging papers each connector writes
	// per linked community (default 8).
	ConnectorPapers int
	// GroupSize is the size of the research groups each community is
	// divided into (default 15). Co-authors come mostly from the lead
	// author's group, which gives the graph the local clustering real
	// co-authorship networks have.
	GroupSize int
	// LocalProb is the probability that a non-lead team slot is filled
	// from the lead's research group rather than community-wide Zipf
	// sampling (default 0.7). The community-wide draws are what create
	// hub authors that collaborate across groups.
	LocalProb float64
	// MegaHubsPerCommunity plants this many "pizza delivery person"
	// authors per community (default Authors/400 + 1): nodes with a huge
	// number of weak one-paper ties scattered across their community and
	// beyond. They are the §4.3 motivation for the degree-penalized
	// normalization — without penalization, random walks leak through
	// them to everywhere. Set to -1 to disable.
	MegaHubsPerCommunity int
	// MegaHubFanout is the fraction of a community the mega-hub has weak
	// ties to (default 0.25).
	MegaHubFanout float64
}

// DefaultConfig mirrors the paper's evaluation setup at a laptop-friendly
// scale (~4K authors). Use Scale to approach the real DBLP size.
func DefaultConfig() Config {
	return Config{
		Seed: 1,
		Communities: []Community{
			{Name: "databases & mining", Authors: 1200, Papers: 3600, RepositorySize: 13},
			{Name: "statistics & machine learning", Authors: 1200, Papers: 3600, RepositorySize: 13},
			{Name: "information retrieval", Authors: 800, Papers: 2400, RepositorySize: 11},
			{Name: "computer vision", Authors: 800, Papers: 2400, RepositorySize: 11},
		},
		MinTeam:           2,
		MaxTeam:           5,
		CrossProb:         0.05,
		ZipfS:             1.6,
		ConnectorsPerPair: 3,
		ConnectorPapers:   8,
	}
}

// Scale multiplies every community's author and paper counts by f
// (repository sizes stay fixed). Scale(cfg, 80) approaches the real DBLP's
// ~315K authors.
func Scale(cfg Config, f float64) Config {
	out := cfg
	out.Communities = make([]Community, len(cfg.Communities))
	for i, c := range cfg.Communities {
		c.Authors = int(float64(c.Authors) * f)
		c.Papers = int(float64(c.Papers) * f)
		out.Communities[i] = c
	}
	return out
}

func (c *Config) fillDefaults() {
	if len(c.Communities) == 0 {
		c.Communities = DefaultConfig().Communities
	}
	if c.MinTeam < 2 {
		c.MinTeam = 2
	}
	if c.MaxTeam < c.MinTeam {
		c.MaxTeam = c.MinTeam + 3
	}
	if c.CrossProb < 0 || c.CrossProb > 1 {
		c.CrossProb = 0.05
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.6
	}
	if c.ConnectorsPerPair < 0 {
		c.ConnectorsPerPair = 3
	}
	if c.ConnectorPapers <= 0 {
		c.ConnectorPapers = 8
	}
	if c.GroupSize <= 1 {
		c.GroupSize = 15
	}
	if c.LocalProb <= 0 || c.LocalProb > 1 {
		c.LocalProb = 0.7
	}
	if c.MegaHubFanout <= 0 || c.MegaHubFanout > 1 {
		c.MegaHubFanout = 0.25
	}
}

// Dataset is a generated co-authorship graph plus the metadata the
// experiments need.
type Dataset struct {
	// Graph is the weighted co-authorship graph.
	Graph *graph.Graph
	// Communities echoes the generating config.
	Communities []Community
	// CommunityOf maps author id → community index (connectors belong to
	// their home community).
	CommunityOf []int
	// Repository holds, per community index, the ids of the most prolific
	// authors (sorted by descending weighted degree).
	Repository [][]int
	// Connectors lists the planted cross-disciplinary authors.
	Connectors []int
	// MegaHubs lists the planted weak-tie hub authors (the §4.3 "pizza
	// delivery persons"). They are excluded from the query repository.
	MegaHubs []int
	// Papers is the underlying author–paper incidence structure; Graph is
	// its unit-weighted projection, matching the paper's §7 construction.
	Papers *bipartite.Graph
	// PaperCount is the total number of papers generated.
	PaperCount int
}

// Generate builds a synthetic dataset.
func Generate(cfg Config) (*Dataset, error) {
	cfg.fillDefaults()
	for i, c := range cfg.Communities {
		if c.Authors < cfg.MaxTeam {
			return nil, fmt.Errorf("dblp: community %d (%q) has %d authors, need at least a full team of %d",
				i, c.Name, c.Authors, cfg.MaxTeam)
		}
		if c.Papers <= 0 {
			return nil, fmt.Errorf("dblp: community %d (%q) has no papers", i, c.Name)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Assign contiguous author id ranges per community.
	total := 0
	base := make([]int, len(cfg.Communities))
	for i, c := range cfg.Communities {
		base[i] = total
		total += c.Authors
	}
	ds := &Dataset{Communities: cfg.Communities, CommunityOf: make([]int, total)}
	bp := bipartite.NewBuilder(total)
	labels := make([]string, total)
	for ci, c := range cfg.Communities {
		for a := 0; a < c.Authors; a++ {
			id := base[ci] + a
			ds.CommunityOf[id] = ci
			labels[id] = authorName(rng, ci, a)
		}
	}

	// Zipf samplers per community: author rank 0 is the most prolific.
	zipfs := make([]*rand.Zipf, len(cfg.Communities))
	for i, c := range cfg.Communities {
		zipfs[i] = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(c.Authors-1))
	}
	sample := func(ci int) int { return base[ci] + int(zipfs[ci].Uint64()) }

	// Teams are generated in-range, so AddPaper should never fail; if a
	// future edit breaks that invariant the first failure is remembered
	// and returned as an error instead of panicking out of a library call.
	var addPaperErr error
	addPaper := func(team []int) {
		if _, err := bp.AddPaper(team); err != nil {
			if addPaperErr == nil {
				addPaperErr = err
			}
			return
		}
		ds.PaperCount++
	}

	// Regular papers. Every paper has a "lead" author chosen round-robin
	// through a random permutation of the community — so each author
	// (co-)authors at least ⌊Papers/Authors⌋ papers and nobody is isolated,
	// as in real DBLP where every listed author has at least one paper —
	// while the remaining team slots are Zipf-sampled, which is what makes
	// a few prolific authors into hubs.
	// groupDraw samples a co-author near the lead: from the lead's research
	// group with probability LocalProb (local clustering), otherwise by
	// community-wide Zipf (hub collaborators).
	groupDraw := func(ci, lead int) int {
		if rng.Float64() < cfg.LocalProb {
			local := lead - base[ci]
			g0 := (local / cfg.GroupSize) * cfg.GroupSize
			g1 := g0 + cfg.GroupSize
			if g1 > cfg.Communities[ci].Authors {
				g1 = cfg.Communities[ci].Authors
			}
			return base[ci] + g0 + rng.Intn(g1-g0)
		}
		return sample(ci)
	}

	for ci, c := range cfg.Communities {
		leads := rng.Perm(c.Authors)
		for p := 0; p < c.Papers; p++ {
			size := cfg.MinTeam + rng.Intn(cfg.MaxTeam-cfg.MinTeam+1)
			lead := base[ci] + leads[p%c.Authors]
			team := sampleTeam(rng, size-1, base[ci], base[ci]+c.Authors, func() int { return groupDraw(ci, lead) })
			if !contains(team, lead) {
				team = append(team, lead)
			}
			if len(cfg.Communities) > 1 && rng.Float64() < cfg.CrossProb {
				other := rng.Intn(len(cfg.Communities) - 1)
				if other >= ci {
					other++
				}
				foreign := sample(other)
				if !contains(team, foreign) {
					for i, m := range team {
						if m != lead {
							team[i] = foreign
							break
						}
					}
				}
			}
			addPaper(team)
		}
	}

	// Planted connectors between adjacent community pairs.
	for ci := 0; ci+1 < len(cfg.Communities); ci++ {
		for n := 0; n < cfg.ConnectorsPerPair; n++ {
			conn := sample(ci)
			ds.Connectors = append(ds.Connectors, conn)
			for _, side := range []int{ci, ci + 1} {
				for p := 0; p < cfg.ConnectorPapers; p++ {
					size := cfg.MinTeam + rng.Intn(cfg.MaxTeam-cfg.MinTeam+1)
					team := sampleTeam(rng, size-1, base[side], base[side]+cfg.Communities[side].Authors,
						func() int { return sample(side) })
					team = append(team, conn)
					addPaper(team)
				}
			}
		}
	}

	// Planted mega-hubs: the last few authors of each community become
	// "pizza delivery persons" (§4.3) with a large number of weak
	// one-paper ties spread across their community and, more thinly,
	// across the others. Without degree penalization, random walks leak
	// through them to everywhere in the graph.
	isMegaHub := make(map[int]bool)
	for ci, c := range cfg.Communities {
		hubs := cfg.MegaHubsPerCommunity
		if hubs == 0 {
			hubs = c.Authors/400 + 1
		}
		if hubs < 0 {
			continue // disabled
		}
		fanout := int(float64(c.Authors) * cfg.MegaHubFanout)
		for h := 0; h < hubs && h < c.Authors; h++ {
			hub := base[ci] + c.Authors - 1 - h
			ds.MegaHubs = append(ds.MegaHubs, hub)
			isMegaHub[hub] = true
			// One-off two-author papers: the bibliographic form of a weak
			// tie.
			for i := 0; i < fanout; i++ {
				a := base[ci] + rng.Intn(c.Authors)
				if a != hub {
					addPaper([]int{hub, a})
				}
			}
			// Thin cross-community spread.
			if len(cfg.Communities) > 1 {
				for i := 0; i < fanout/5; i++ {
					other := rng.Intn(len(cfg.Communities) - 1)
					if other >= ci {
						other++
					}
					a := base[other] + rng.Intn(cfg.Communities[other].Authors)
					if a != hub {
						addPaper([]int{hub, a})
					}
				}
			}
		}
	}

	if addPaperErr != nil {
		return nil, fmt.Errorf("dblp: generated an invalid paper team: %w", addPaperErr)
	}
	papers, err := bp.Build()
	if err != nil {
		return nil, err
	}
	ds.Papers = papers
	g, err := papers.Project(bipartite.UnitWeighting, labels)
	if err != nil {
		return nil, err
	}
	ds.Graph = g

	// Query repository: most prolific (highest weighted degree) authors
	// per community, excluding planted mega-hubs — their degree is an
	// artifact of weak ties, not the sustained collaboration that makes a
	// researcher a natural query.
	ds.Repository = make([][]int, len(cfg.Communities))
	for ci, c := range cfg.Communities {
		ids := make([]int, 0, c.Authors)
		for a := 0; a < c.Authors; a++ {
			if id := base[ci] + a; !isMegaHub[id] {
				ids = append(ids, id)
			}
		}
		sort.SliceStable(ids, func(x, y int) bool {
			return g.WeightedDegree(ids[x]) > g.WeightedDegree(ids[y])
		})
		size := c.RepositorySize
		if size <= 0 || size > len(ids) {
			size = min(13, len(ids))
		}
		ds.Repository[ci] = ids[:size]
	}
	return ds, nil
}

// sampleTeam draws `size` distinct authors in [lo, hi) using the provided
// sampler, falling back to linear probing (wrapped into the range) if the
// Zipf head keeps colliding.
func sampleTeam(rng *rand.Rand, size, lo, hi int, draw func() int) []int {
	if size < 1 {
		size = 1
	}
	if size > hi-lo {
		size = hi - lo
	}
	team := make([]int, 0, size)
	seen := make(map[int]bool, size)
	for attempts := 0; len(team) < size && attempts < size*20; attempts++ {
		a := draw()
		if !seen[a] {
			seen[a] = true
			team = append(team, a)
		}
	}
	// Extremely skewed Zipf can fail to produce distinct draws; probe
	// linearly from the last draw, wrapping within the community.
	for next := 1; len(team) < size; next++ {
		a := lo + (draw()-lo+next)%(hi-lo)
		if !seen[a] {
			seen[a] = true
			team = append(team, a)
		}
	}
	return team
}

// RandomQueries draws q distinct query nodes from the repository. When
// spread is true the draws rotate across communities (the paper composes
// queries "by randomly selecting a small number of queries from the
// repository" built from several communities); otherwise they come from
// anywhere in the repository.
func (d *Dataset) RandomQueries(rng *rand.Rand, q int, spread bool) ([]int, error) {
	var pool []int
	if spread {
		// Interleave communities round-robin, then pick a prefix window to
		// sample from.
		maxLen := 0
		for _, r := range d.Repository {
			if len(r) > maxLen {
				maxLen = len(r)
			}
		}
		for i := 0; i < maxLen; i++ {
			for _, r := range d.Repository {
				if i < len(r) {
					pool = append(pool, r[i])
				}
			}
		}
	} else {
		for _, r := range d.Repository {
			pool = append(pool, r...)
		}
	}
	if q <= 0 || q > len(pool) {
		return nil, fmt.Errorf("dblp: cannot draw %d queries from a repository of %d", q, len(pool))
	}
	perm := rng.Perm(len(pool))
	out := make([]int, 0, q)
	seen := make(map[int]bool, q)
	for _, i := range perm {
		if !seen[pool[i]] {
			seen[pool[i]] = true
			out = append(out, pool[i])
		}
		if len(out) == q {
			break
		}
	}
	if len(out) < q {
		return nil, fmt.Errorf("dblp: repository too small for %d distinct queries", q)
	}
	return out, nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
