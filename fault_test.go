package ceps_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"ceps"
)

// TestQueryDeadline50ms is the headline robustness acceptance check: on the
// paper-scale DBLP graph, a query armed with a 50ms deadline and an
// effectively unbounded iteration budget must come back in well under twice
// the deadline, with an error satisfying both the package sentinel and the
// stdlib identity.
func TestQueryDeadline50ms(t *testing.T) {
	ds, err := ceps.GenerateDBLP(ceps.DefaultDBLPConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ceps.DefaultConfig()
	cfg.RWR.Iterations = 1 << 30
	eng, err := ceps.NewEngine(ds.Graph, ceps.WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	// Pay the one-time O(M) matrix normalization outside the deadline, as a
	// deadline-sensitive service would.
	if err := eng.Prepare(); err != nil {
		t.Fatal(err)
	}

	const deadline = 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	_, err = eng.QueryCtx(ctx, ds.Repository[0][0], ds.Repository[1][0])
	elapsed := time.Since(start)

	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded identity", err)
	}
	if !errors.Is(err, ceps.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ceps.ErrDeadlineExceeded identity", err)
	}
	if elapsed >= 2*deadline {
		t.Errorf("query returned after %v, want < %v", elapsed, 2*deadline)
	}
}

// TestQueryCancellation: a canceled context surfaces as ErrCanceled with
// the stdlib identity preserved.
func TestQueryCancellation(t *testing.T) {
	ds := smallDataset(t)
	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.QueryCtx(ctx, ds.Repository[0][0], ds.Repository[1][0])
	if !errors.Is(err, ceps.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
}

// TestEngineFallbackOnInjectedPartitionerFailure drives the graceful
// degradation ladder through the public API: fast mode whose partition
// state is gone still answers on the full graph and says so.
func TestEngineFallbackOnInjectedPartitionerFailure(t *testing.T) {
	ds := smallDataset(t)
	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()))
	pt, err := ceps.PrePartition(ds.Graph, 4, ceps.PartitionOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pt.Partition = nil // injected partitioner failure
	eng.SetPartitioned(pt)

	res, err := eng.Query(ds.Repository[0][0], ds.Repository[1][0])
	if err != nil {
		t.Fatalf("degraded query should succeed, got %v", err)
	}
	if res.Fallback == nil || res.Degraded == nil {
		t.Fatal("fallback not recorded on the public result")
	}
	if res.Degraded.Mode != "full_graph_fallback" {
		t.Errorf("Degraded = %+v, want full_graph_fallback", res.Degraded)
	}
	if res.Fallback.From != "fast-ceps" || res.Fallback.To != "full-ceps" {
		t.Errorf("fallback = %+v", res.Fallback)
	}
	if !res.Subgraph.Has(ds.Repository[0][0]) {
		t.Error("degraded answer lost a query node")
	}
}

// TestQueryBadInputTypedErrors: malformed queries and configs map onto the
// exported sentinels.
func TestQueryBadInputTypedErrors(t *testing.T) {
	ds := smallDataset(t)
	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()))
	if _, err := eng.Query(); !errors.Is(err, ceps.ErrBadQuery) {
		t.Errorf("empty query: err = %v, want ErrBadQuery", err)
	}
	if _, err := eng.Query(-1); !errors.Is(err, ceps.ErrBadQuery) {
		t.Errorf("negative id: err = %v, want ErrBadQuery", err)
	}
	bad := quickConfig()
	bad.Budget = 0
	if err := bad.Validate(); !errors.Is(err, ceps.ErrBadConfig) {
		t.Errorf("zero budget: err = %v, want ErrBadConfig", err)
	}
}

// TestResultDiagnosticsExposed: the convergence verdict reaches the public
// result type.
func TestResultDiagnosticsExposed(t *testing.T) {
	ds := smallDataset(t)
	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()))
	res, err := eng.Query(ds.Repository[0][0], ds.Repository[1][0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RWRDiagnostics) != 2 {
		t.Fatalf("got %d diagnostics, want 2", len(res.RWRDiagnostics))
	}
	if !res.Converged() {
		t.Errorf("default run should converge: %+v", res.RWRDiagnostics)
	}
	for _, d := range res.RWRDiagnostics {
		if d.Sweeps == 0 || d.Residual < 0 {
			t.Errorf("implausible diagnostics %+v", d)
		}
	}
}
