// Command cepsbench regenerates every table and figure of the paper's
// evaluation section (§7) and prints the same rows/series the paper
// reports. See EXPERIMENTS.md for the recorded paper-vs-measured summary.
//
// Usage:
//
//	cepsbench [-scale f] [-trials n] [-seed s] [-exp id[,id...]]
//
// Scale 1.0 generates ~4K authors (fast); -scale 80 approaches the paper's
// 315K-author DBLP graph. Experiment ids: fig2, fig4, fig5, fig6, speedup,
// skew, kernel, all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ceps/internal/experiments"
	"ceps/internal/report"
)

func main() {
	var (
		scale   = flag.Float64("scale", 1.0, "dataset scale (1.0 ≈ 4K authors, 80 ≈ paper's 315K)")
		trials  = flag.Int("trials", 5, "random query draws averaged per data point")
		seed    = flag.Int64("seed", 1, "random seed for dataset and query sampling")
		exps    = flag.String("exp", "all", "comma-separated experiment ids: datastats,fig2,fig4,fig5,fig6,speedup,skew,kernel,replace,inject,retrieval,scaling,steiner,all; overload and coalesce run only when named explicitly")
		iters   = flag.Int("rwr-iters", 50, "RWR power-iteration count m")
		htmlOut = flag.String("html", "", "also write the regenerated figures as a self-contained HTML report")
		jsonOut = flag.String("json", "", "also write every experiment's raw points as JSON")

		overloadDur     = flag.Duration("overload-duration", 2*time.Second, "overload: closed-loop duration per arm")
		overloadWorkers = flag.Int("overload-workers", 4, "overload: solve-pool workers (sets capacity)")
		overloadClients = flag.Int("overload-clients", 64, "overload: closed-loop client count")
		overloadOut     = flag.String("overload-out", "", "overload: also write the two-arm result as JSON to this file")

		coalesceWorkers = flag.Int("coalesce-workers", 4, "coalesce: solve-pool workers")
		coalesceClients = flag.Int("coalesce-clients", 64, "coalesce: closed-loop client count")
		coalesceSets    = flag.Int("coalesce-sets", 512, "coalesce: distinct 2-source query sets per arm")
		coalesceDelay   = flag.Duration("coalesce-delay", 5*time.Millisecond, "coalesce: injected per-solve-call delay")
		coalesceOut     = flag.String("coalesce-out", "", "coalesce: also write the two-arm result as JSON to this file")

		replaceTeams = flag.Int("replace-teams", 24, "replace: held-out co-author recovery trials")
		replaceSize  = flag.Int("replace-team-size", 4, "replace: team size per trial")
		replaceOut   = flag.String("replace-out", "", "replace: also write the two-arm result as JSON to this file")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]

	fmt.Printf("cepsbench: generating dataset (scale %.2f, seed %d)...\n", *scale, *seed)
	t0 := time.Now()
	s, err := experiments.NewSetup(*scale, *seed, *trials)
	if err != nil {
		fatal(err)
	}
	s.Base.RWR.Iterations = *iters
	g := s.Dataset.Graph
	fmt.Printf("dataset: %d authors, %d edges, %d papers (generated in %v)\n\n",
		g.N(), g.M(), s.Dataset.PaperCount, time.Since(t0).Round(time.Millisecond))

	run := func(id string, fn func() error) {
		if !all && !want[id] {
			return
		}
		start := time.Now()
		fmt.Printf("=== %s ===\n", id)
		if err := fn(); err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		fmt.Printf("(%s finished in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	var results map[string]any
	if *jsonOut != "" {
		results = map[string]any{
			"scale": *scale, "seed": *seed, "trials": *trials,
			"nodes": g.N(), "edges": g.M(), "papers": s.Dataset.PaperCount,
		}
	}
	record := func(id string, v any) {
		if results != nil {
			results[id] = v
		}
	}

	var page *report.Page
	if *htmlOut != "" {
		page = &report.Page{
			Title: "Center-Piece Subgraphs: regenerated evaluation",
			Subtitle: fmt.Sprintf("synthetic DBLP, %d authors / %d edges, %d trials, seed %d",
				g.N(), g.M(), *trials, *seed),
		}
	}

	run("datastats", func() error {
		stats := experiments.DataStats(s)
		record("datastats", stats)
		stats.Render(os.Stdout)
		fmt.Println()
		if page != nil {
			page.Sections = append(page.Sections, report.Section{
				Title: "Dataset structural profile",
				Prose: "The synthetic co-authorship graph's structure class: heavy-tailed degrees, local clustering, one giant component.",
				Table: experiments.DataStatsTable(stats),
			})
		}
		return nil
	})
	run("fig2", func() error {
		r, err := experiments.Fig2(s, 4)
		if err != nil {
			return err
		}
		record("fig2", r)
		experiments.RenderFig2(os.Stdout, r)
		if page != nil {
			page.Sections = append(page.Sections, report.Section{
				Title: "Fig 2: delivered-current baseline vs CePS",
				Prose: "The baseline's output depends on query order (overlap < 1); CePS is order-invariant and selects more strongly connected intermediates.",
				Table: experiments.Fig2Table(r),
			})
		}
		return nil
	})
	run("fig4", func() error {
		pts, err := experiments.Fig4(s, []int{1, 2, 3, 4, 5}, []int{10, 20, 30, 40, 50, 60, 80, 100})
		if err != nil {
			return err
		}
		record("fig4", pts)
		experiments.RenderFig4(os.Stdout, pts)
		if page != nil {
			a, b := experiments.Fig4Charts(pts)
			page.Sections = append(page.Sections,
				report.Section{Title: "Fig 4(a): mean NRatio vs budget", Chart: a,
					Prose: "More budget captures more goodness mass; more queries concentrate the mass (the paper's key Fig. 4 observation)."},
				report.Section{Title: "Fig 4(b): mean ERatio vs budget", Chart: b})
		}
		return nil
	})
	run("fig5", func() error {
		pts, err := experiments.Fig5(s, []int{2, 3}, []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}, 20)
		if err != nil {
			return err
		}
		record("fig5", pts)
		experiments.RenderFig5(os.Stdout, pts)
		if page != nil {
			a, b := experiments.Fig5Charts(pts)
			page.Sections = append(page.Sections,
				report.Section{Title: "Fig 5(a): mean NRatio vs normalization α", Chart: a,
					Prose: "The α parametric study of §7.3. See EXPERIMENTS.md: on this synthetic family the direction differs from the paper's DBLP result."},
				report.Section{Title: "Fig 5(b): mean ERatio vs normalization α", Chart: b})
		}
		return nil
	})
	run("fig6", func() error {
		pts, err := experiments.Fig6(s, []int{2, 5}, []int{1, 2, 5, 10, 20, 50}, 20)
		if err != nil {
			return err
		}
		record("fig6", pts)
		experiments.RenderFig6(os.Stdout, pts)
		if page != nil {
			chart, table := experiments.Fig6Chart(pts)
			page.Sections = append(page.Sections, report.Section{
				Title: "Fig 6: Fast CePS speedup vs quality",
				Prose: "Response time falls steeply with the number of pre-partitions while RelRatio stays near 1 (partitions = 1 is the full-graph run).",
				Chart: chart, Table: table,
			})
		}
		return nil
	})
	run("speedup", func() error {
		pts, err := experiments.Speedup(s, []int{2, 3, 5}, 20, 20)
		if err != nil {
			return err
		}
		record("speedup", pts)
		experiments.RenderSpeedup(os.Stdout, pts)
		if page != nil {
			tiles, table := experiments.SpeedupTiles(pts)
			page.Tiles = append(page.Tiles, tiles...)
			page.Sections = append(page.Sections, report.Section{
				Title: "Headline: Fast CePS speedup (paper: ~6:1 at ~90%)",
				Table: table,
			})
		}
		return nil
	})
	run("skew", func() error {
		pts, err := experiments.Skew(s, 5)
		if err != nil {
			return err
		}
		record("skew", pts)
		experiments.RenderSkew(os.Stdout, pts)
		return nil
	})
	run("kernel", func() error {
		pts, err := experiments.Kernel(s, []int{1, 4, 8, 16}, []int{1, 4, 8}, 3)
		if err != nil {
			return err
		}
		record("kernel", pts)
		experiments.RenderKernel(os.Stdout, pts)
		if page != nil {
			page.Sections = append(page.Sections, report.Section{
				Title: "Step-1 kernel: blocked multi-source RWR vs scalar",
				Prose: "One fused SpMM sweep advances all Q walks per iteration; scores are bit-identical to per-query solves, so the speedup is pure memory-traffic amortization plus nnz-balanced row parallelism.",
				Table: experiments.KernelTable(pts),
			})
		}
		return nil
	})
	run("replace", func() error {
		r, err := experiments.ReplaceEval(s, *replaceTeams, *replaceSize)
		if err != nil {
			return err
		}
		record("replace", r)
		experiments.RenderReplaceEval(os.Stdout, r)
		if *replaceOut != "" {
			if err := writeResultJSON(*replaceOut, r); err != nil {
				return err
			}
			fmt.Printf("replace results written to %s\n", *replaceOut)
		}
		if page != nil {
			page.Sections = append(page.Sections, report.Section{
				Title: "Subteam replacement: held-out co-author recovery",
				Prose: "Each trial departs one author of a real substrate paper and holds out another co-author of the same paper; the replace ranker (walk proximity + co-authorship kernel) and the plain center-piece scorer rank the identical two-hop pool.",
				Table: experiments.ReplaceEvalTable(r),
			})
		}
		return nil
	})
	// The overload experiment saturates the host on purpose (64 clients at
	// 2x capacity), so it never rides along with -exp all: name it.
	if want["overload"] {
		run("overload", func() error {
			r, err := experiments.Overload(s, *overloadWorkers, *overloadClients, 5*time.Millisecond, *overloadDur)
			if err != nil {
				return err
			}
			record("overload", r)
			experiments.RenderOverload(os.Stdout, r)
			if *overloadOut != "" {
				f, err := os.Create(*overloadOut)
				if err != nil {
					return err
				}
				enc := json.NewEncoder(f)
				enc.SetIndent("", "  ")
				if err := enc.Encode(r); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Printf("overload results written to %s\n", *overloadOut)
			}
			return nil
		})
	}
	// The coalesce experiment also saturates the host (64 unpaced clients
	// against a 4-slot pool), so like overload it runs only when named.
	if want["coalesce"] {
		run("coalesce", func() error {
			r, err := experiments.Coalesce(s, *coalesceWorkers, *coalesceClients, *coalesceSets, *coalesceDelay)
			if err != nil {
				return err
			}
			record("coalesce", r)
			experiments.RenderCoalesce(os.Stdout, r)
			if *coalesceOut != "" {
				f, err := os.Create(*coalesceOut)
				if err != nil {
					return err
				}
				enc := json.NewEncoder(f)
				enc.SetIndent("", "  ")
				if err := enc.Encode(r); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Printf("coalesce results written to %s\n", *coalesceOut)
			}
			return nil
		})
	}
	run("inject", func() error {
		pts, err := experiments.Inject(s, 3, 20, []float64{5, 2, 1, 0.5, 0.1})
		if err != nil {
			return err
		}
		record("inject", pts)
		experiments.RenderInject(os.Stdout, pts)
		return nil
	})
	run("retrieval", func() error {
		pts, err := experiments.Retrieval(s, 3, []int{10, 20, 50})
		if err != nil {
			return err
		}
		record("retrieval", pts)
		experiments.RenderRetrieval(os.Stdout, pts)
		return nil
	})
	run("scaling", func() error {
		pts, err := experiments.Scaling(s, []float64{0.5, 1, 2, 4}, 2, 20, 20)
		if err != nil {
			return err
		}
		record("scaling", pts)
		experiments.RenderScaling(os.Stdout, pts)
		if page != nil {
			chart, table := experiments.ScalingChartAndTable(pts)
			page.Sections = append(page.Sections, report.Section{
				Title: "Scaling: full vs Fast CePS response time",
				Chart: chart, Table: table,
			})
		}
		return nil
	})
	writeJSON := func() {
		if results == nil {
			return
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("JSON results written to %s\n", *jsonOut)
	}
	defer writeJSON()

	writeHTML := func() {
		if page == nil {
			return
		}
		f, err := os.Create(*htmlOut)
		if err != nil {
			fatal(err)
		}
		if err := page.Render(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("HTML report written to %s\n", *htmlOut)
	}
	defer writeHTML()

	run("steiner", func() error {
		var pts []*experiments.SteinerPoint
		for _, q := range []int{2, 3, 4} {
			p, err := experiments.Steiner(s, q)
			if err != nil {
				return err
			}
			pts = append(pts, p)
		}
		record("steiner", pts)
		experiments.RenderSteiner(os.Stdout, pts)
		return nil
	})
}

// writeResultJSON writes one experiment's result as indented JSON.
func writeResultJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cepsbench:", err)
	os.Exit(1)
}
