package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ceps"
	"ceps/internal/rwr"
)

// This file is the subteam-replacement serving surface of the CLI: the
// `ceps replace` verb and the POST /v1/replace endpoint, both mapping
// field-for-field onto Engine.ReplaceSubteam. Graph files carry only the
// projected co-authorship graph (no author–paper incidence), so both
// surfaces score structural overlap with the projected-graph kernel; the
// bipartite kernel is reachable through the Go API's WithBipartite.

// replaceRequestV1 is the POST /v1/replace schema:
//
//	{
//	  "team": [1, 2, 3],          // node ids — or "team_q": "Alice,Bob" (ids or labels)
//	  "departing": [2],           // required; or "departing_q": "Bob"
//	  "candidates": [7, 9],       // optional explicit pool (team members filtered)
//	  "pool": "densest",          // optional: "two_hop" (default) | "densest"
//	  "top_n": 5,                 // ranking size (0 = 10, negative = whole pool)
//	  "max_candidates": 128,      // pool cap (0 = 256, negative = unlimited)
//	  "weight_rwr": 0.7,          // optional blend override (give both weights)
//	  "weight_overlap": 0.3,
//	  "timeout_ms": 250,          // per-request deadline (caps the server default)
//	  "no_degrade": true,         // fail 503 instead of a reduced-fidelity panel
//	  "coalesce": false,          // opt the panel out of (or into) solve coalescing
//	  "exact": true               // dense pre-solved inverse (small graphs only)
//	}
type replaceRequestV1 struct {
	Team          []int    `json:"team,omitempty"`
	TeamQ         string   `json:"team_q,omitempty"`
	Departing     []int    `json:"departing,omitempty"`
	DepartingQ    string   `json:"departing_q,omitempty"`
	Candidates    []int    `json:"candidates,omitempty"`
	Pool          string   `json:"pool,omitempty"`
	TopN          int      `json:"top_n,omitempty"`
	MaxCandidates int      `json:"max_candidates,omitempty"`
	WeightRWR     *float64 `json:"weight_rwr,omitempty"`
	WeightOverlap *float64 `json:"weight_overlap,omitempty"`
	TimeoutMS     int      `json:"timeout_ms,omitempty"`
	NoDegrade     bool     `json:"no_degrade,omitempty"`
	Coalesce      *bool    `json:"coalesce,omitempty"`
	Exact         bool     `json:"exact,omitempty"`
}

// jsonReplacement is one ranked candidate of a replace response.
type jsonReplacement struct {
	Node         int     `json:"node"`
	Label        string  `json:"label,omitempty"`
	Score        float64 `json:"score"`
	RWRProximity float64 `json:"rwr_proximity"`
	Overlap      float64 `json:"overlap"`
}

// jsonReplaceResult is the /v1/replace (and `ceps replace -json`) response.
type jsonReplaceResult struct {
	Team         []int             `json:"team"`
	Departing    []int             `json:"departing"`
	Remaining    []int             `json:"remaining"`
	PoolStrategy string            `json:"pool_strategy"`
	PoolSize     int               `json:"pool_size"`
	Exact        bool              `json:"exact,omitempty"`
	Replacements []jsonReplacement `json:"replacements"`
	SolveKernel  string            `json:"solve_kernel,omitempty"`
	SolveSweeps  int               `json:"solve_sweeps,omitempty"`
	CacheHits    int               `json:"cache_hits"`
	CacheMisses  int               `json:"cache_misses"`
	Degraded     string            `json:"degraded,omitempty"`
	ElapsedMS    float64           `json:"elapsed_ms"`
	TraceID      string            `json:"trace_id,omitempty"`
}

// decodeReplaceRequestV1 parses a POST /v1/replace body against the graph
// and resolves the team/departing node sets. Like the other v1 decoders it
// is a pure function over its inputs (fuzzable; every failure is a client
// error, never a panic).
func decodeReplaceRequestV1(g *ceps.Graph, body []byte) (req replaceRequestV1, team, departing []int, err error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, nil, nil, fmt.Errorf("bad request body: %w", err)
	}
	if dec.More() {
		return req, nil, nil, fmt.Errorf("bad request body: trailing data after JSON object")
	}
	team, departing, err = resolveReplaceRequestV1(g, &req)
	return req, team, departing, err
}

// resolveReplaceRequestV1 validates a decoded replace request and resolves
// its team and departing member sets.
func resolveReplaceRequestV1(g *ceps.Graph, req *replaceRequestV1) (team, departing []int, err error) {
	resolve := func(ids []int, q, idsField, qField string) ([]int, error) {
		switch {
		case len(ids) > 0 && q != "":
			return nil, fmt.Errorf("set %q or %q, not both", idsField, qField)
		case len(ids) > 0:
			for _, id := range ids {
				if id < 0 || id >= g.N() {
					return nil, fmt.Errorf("%s id %d out of range [0,%d)", idsField, id, g.N())
				}
			}
			return ids, nil
		case q != "":
			return parseQueries(g, q)
		default:
			return nil, fmt.Errorf("%q (or %q) is required", idsField, qField)
		}
	}
	if team, err = resolve(req.Team, req.TeamQ, "team", "team_q"); err != nil {
		return nil, nil, err
	}
	if departing, err = resolve(req.Departing, req.DepartingQ, "departing", "departing_q"); err != nil {
		return nil, nil, err
	}
	for _, id := range req.Candidates {
		if id < 0 || id >= g.N() {
			return nil, nil, fmt.Errorf("candidate id %d out of range [0,%d)", id, g.N())
		}
	}
	switch req.Pool {
	case "", "two_hop", "densest":
	default:
		return nil, nil, fmt.Errorf("pool %q must be \"two_hop\" or \"densest\"", req.Pool)
	}
	if (req.WeightRWR == nil) != (req.WeightOverlap == nil) {
		return nil, nil, fmt.Errorf(`give both "weight_rwr" and "weight_overlap" or neither`)
	}
	if req.TimeoutMS < 0 {
		return nil, nil, fmt.Errorf("timeout_ms %d must not be negative", req.TimeoutMS)
	}
	return team, departing, nil
}

// replaceOptionsV1 maps a resolved replace request onto the engine's
// per-call options. As with queryOptionsV1, a per-request timeout may only
// tighten the server-wide default.
func replaceOptionsV1(req replaceRequestV1, departing []int, defaultTimeout time.Duration) []ceps.ReplaceOption {
	opts := []ceps.ReplaceOption{ceps.WithDeparting(departing...)}
	if len(req.Candidates) > 0 {
		opts = append(opts, ceps.WithCandidatePool(req.Candidates...))
	}
	if req.Pool == "densest" {
		opts = append(opts, ceps.WithDensestPool())
	}
	if req.TopN != 0 {
		opts = append(opts, ceps.WithReplaceTopN(req.TopN))
	}
	if req.MaxCandidates != 0 {
		opts = append(opts, ceps.WithMaxCandidates(req.MaxCandidates))
	}
	if req.WeightRWR != nil && req.WeightOverlap != nil {
		opts = append(opts, ceps.WithScoreWeights(*req.WeightRWR, *req.WeightOverlap))
	}
	if req.Exact {
		opts = append(opts, ceps.WithExactScores())
	}
	timeout := defaultTimeout
	if d := time.Duration(req.TimeoutMS) * time.Millisecond; d > 0 && (timeout <= 0 || d < timeout) {
		timeout = d
	}
	if timeout > 0 {
		opts = append(opts, ceps.WithReplaceTimeout(timeout))
	}
	if req.NoDegrade {
		opts = append(opts, ceps.WithReplaceNoDegrade())
	}
	if req.Coalesce != nil {
		opts = append(opts, ceps.WithReplaceCoalesceHint(*req.Coalesce))
	}
	return opts
}

// buildJSONReplaceResult renders a finished replacement ranking.
func buildJSONReplaceResult(g *ceps.Graph, res *ceps.ReplaceResult) jsonReplaceResult {
	out := jsonReplaceResult{
		Team:         res.Team,
		Departing:    res.Departing,
		Remaining:    res.Remaining,
		PoolStrategy: res.PoolStrategy,
		PoolSize:     res.PoolSize,
		Exact:        res.Exact,
		Replacements: make([]jsonReplacement, len(res.Replacements)),
		SolveKernel:  res.Stages.SolveKernel,
		SolveSweeps:  res.Stages.SolveSweeps,
		CacheHits:    res.Stages.CacheHits,
		CacheMisses:  res.Stages.CacheMisses,
		ElapsedMS:    float64(res.Elapsed.Nanoseconds()) / 1e6,
		TraceID:      res.TraceID,
	}
	for i, rep := range res.Replacements {
		out.Replacements[i] = jsonReplacement{
			Node:         rep.Node,
			Label:        g.Label(rep.Node),
			Score:        rep.Score,
			RWRProximity: rep.RWRProximity,
			Overlap:      rep.Overlap,
		}
	}
	if res.Degraded != nil {
		out.Degraded = res.Degraded.Mode
	}
	return out
}

// handleReplaceV1 serves POST /v1/replace. The caller has already opened
// the request trace and stamped X-Ceps-Trace-Id.
func handleReplaceV1(eng *ceps.Engine, g *ceps.Graph, defaultTimeout time.Duration) traceHandler {
	return func(ctx context.Context, span *ceps.Span, w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", "POST")
			writeQueryError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
			return
		}
		body, status, err := readBody(w, r)
		if err != nil {
			writeQueryError(w, status, err)
			return
		}
		req, team, departing, err := decodeReplaceRequestV1(g, body)
		if err != nil {
			writeQueryError(w, http.StatusBadRequest, err)
			return
		}
		res, err := eng.ReplaceSubteam(ctx, team, replaceOptionsV1(req, departing, defaultTimeout)...)
		if err != nil {
			span.SetError(err)
			writeQueryError(w, queryStatus(err), err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(buildJSONReplaceResult(g, res))
	}
}

// runReplace executes the `ceps replace` verb: one subteam-replacement
// query against a graph file, printed as a ranked listing or JSON.
func runReplace(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ceps replace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphPath  = fs.String("graph", "", "path to a ceps-graph text file (required)")
		teamList   = fs.String("team", "", "comma-separated team members: ids or labels (required)")
		departList = fs.String("departing", "", "comma-separated departing members: ids or labels (required)")
		candList   = fs.String("candidates", "", "comma-separated explicit candidate pool (default: derived from the graph)")
		pool       = fs.String("pool", "two_hop", "candidate-pool strategy: two_hop | densest")
		topN       = fs.Int("top", 10, "how many candidates to rank (negative = whole pool)")
		maxCand    = fs.Int("max-candidates", 0, "cap the scored pool (0 = 256, negative = unlimited)")
		wRWR       = fs.Float64("weight-rwr", 0, "blend weight of walk proximity (give both weights or neither)")
		wOverlap   = fs.Float64("weight-overlap", 0, "blend weight of structural overlap")
		exact      = fs.Bool("exact", false, "score the panel with the dense pre-solved inverse (small graphs only)")
		timeout    = fs.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
		cacheMB    = fs.Int("cache-mb", 64, "score-cache budget in MiB (0 = disable caching)")
		workers    = fs.Int("workers", 0, "max concurrent random-walk solves (0 = GOMAXPROCS)")
		c          = fs.Float64("c", 0.5, "random-walk continuation coefficient")
		m          = fs.Int("m", 50, "random-walk iterations")
		alpha      = fs.Float64("alpha", 0.5, "degree-penalization strength")
		norm       = fs.String("norm", "penalized", "normalization: column | penalized | symmetric")
		jsonFmt    = fs.Bool("json", false, "emit the ranking as JSON")
	)
	if err := fs.Parse(argv); err != nil {
		return exitUsage
	}
	if *graphPath == "" || *teamList == "" || *departList == "" {
		fs.Usage()
		return exitUsage
	}
	if *cacheMB < 0 || *workers < 0 {
		fmt.Fprintln(stderr, "ceps: -cache-mb and -workers must be non-negative")
		return exitUsage
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	fail := func(err error) int { return failWith(err, stderr) }

	g, err := ceps.ReadGraphFile(*graphPath)
	if err != nil {
		return fail(err)
	}
	cfg := ceps.DefaultConfig()
	cfg.RWR.C = *c
	cfg.RWR.Iterations = *m
	cfg.RWR.Alpha = *alpha
	switch *norm {
	case "column":
		cfg.RWR.Norm = rwr.NormColumn
	case "penalized":
		cfg.RWR.Norm = rwr.NormDegreePenalized
	case "symmetric":
		cfg.RWR.Norm = rwr.NormSymmetric
	default:
		fmt.Fprintf(stderr, "ceps: unknown normalization %q\n", *norm)
		return exitUsage
	}
	engOpts := []ceps.Option{ceps.WithConfig(cfg)}
	if *cacheMB > 0 {
		engOpts = append(engOpts, ceps.WithCache(int64(*cacheMB)<<20))
	}
	if *workers > 0 {
		engOpts = append(engOpts, ceps.WithWorkers(*workers))
	}
	eng, err := ceps.NewEngine(g, engOpts...)
	if err != nil {
		return fail(err)
	}

	team, err := parseQueries(g, *teamList)
	if err != nil {
		return fail(err)
	}
	departing, err := parseQueries(g, *departList)
	if err != nil {
		return fail(err)
	}
	opts := []ceps.ReplaceOption{ceps.WithDeparting(departing...), ceps.WithReplaceTopN(*topN)}
	if *candList != "" {
		cands, err := parseQueries(g, *candList)
		if err != nil {
			return fail(err)
		}
		opts = append(opts, ceps.WithCandidatePool(cands...))
	}
	switch *pool {
	case "two_hop":
	case "densest":
		opts = append(opts, ceps.WithDensestPool())
	default:
		fmt.Fprintf(stderr, "ceps: unknown pool strategy %q\n", *pool)
		return exitUsage
	}
	if *maxCand != 0 {
		opts = append(opts, ceps.WithMaxCandidates(*maxCand))
	}
	if *wRWR != 0 || *wOverlap != 0 {
		opts = append(opts, ceps.WithScoreWeights(*wRWR, *wOverlap))
	}
	if *exact {
		opts = append(opts, ceps.WithExactScores())
	}

	res, err := eng.ReplaceSubteam(ctx, team, opts...)
	if err != nil {
		return fail(err)
	}
	if *jsonFmt {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(buildJSONReplaceResult(g, res)); err != nil {
			return fail(err)
		}
		return exitOK
	}
	fmt.Fprintf(stdout, "replace: team %v, departing %v, pool %s (%d candidates), response time %v\n",
		res.Team, res.Departing, res.PoolStrategy, res.PoolSize, res.Elapsed)
	for i, rep := range res.Replacements {
		fmt.Fprintf(stdout, "  %2d. %6d  %-40s score=%.4f  rwr=%.3e  overlap=%.3g\n",
			i+1, rep.Node, g.Label(rep.Node), rep.Score, rep.RWRProximity, rep.Overlap)
	}
	return exitOK
}
