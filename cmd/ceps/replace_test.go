package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestDecodeReplaceRequestV1 pins the pure decoder: every malformed shape
// is a client error (never a panic), and the resolved team/departing sets
// come back for well-formed bodies.
func TestDecodeReplaceRequestV1(t *testing.T) {
	g := testGraph(t)

	req, team, departing, err := decodeReplaceRequestV1(g,
		[]byte(`{"team_q":"Alice,Bob","departing_q":"Bob","pool":"densest","top_n":3}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(team) != 2 || team[0] != 0 || team[1] != 1 {
		t.Errorf("team = %v, want [0 1]", team)
	}
	if len(departing) != 1 || departing[0] != 1 {
		t.Errorf("departing = %v, want [1]", departing)
	}
	if req.Pool != "densest" || req.TopN != 3 {
		t.Errorf("decoded fields lost: %+v", req)
	}

	for _, tc := range []struct {
		name, body string
	}{
		{"garbage", `{`},
		{"trailing_data", `{"team":[0],"departing":[0]} {}`},
		{"unknown_field", `{"team":[0,1],"departing":[1],"frogs":1}`},
		{"no_team", `{"departing":[1]}`},
		{"no_departing", `{"team":[0,1]}`},
		{"both_team_forms", `{"team":[0,1],"team_q":"Alice","departing":[1]}`},
		{"both_departing_forms", `{"team":[0,1],"departing":[1],"departing_q":"Bob"}`},
		{"team_out_of_range", `{"team":[0,99],"departing":[0]}`},
		{"unknown_label", `{"team_q":"NoSuchAuthor","departing":[0]}`},
		{"candidate_out_of_range", `{"team":[0,1],"departing":[1],"candidates":[99]}`},
		{"bad_pool", `{"team":[0,1],"departing":[1],"pool":"sparsest"}`},
		{"one_sided_weights", `{"team":[0,1],"departing":[1],"weight_rwr":0.5}`},
		{"negative_timeout", `{"team":[0,1],"departing":[1],"timeout_ms":-1}`},
	} {
		if _, _, _, err := decodeReplaceRequestV1(g, []byte(tc.body)); err == nil {
			t.Errorf("%s: decode accepted %s", tc.name, tc.body)
		}
	}
}

// TestV1Replace: POST /v1/replace answers the documented schema, malformed
// bodies are 400, wrong methods 405 — the same contracts as /v1/query.
func TestV1Replace(t *testing.T) {
	srv, _ := v1TestServer(t)

	resp, err := http.Post(srv.URL+"/v1/replace", "application/json",
		strings.NewReader(`{"team_q":"Alice,Bob","departing_q":"Bob","top_n":-1}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body: %s", resp.StatusCode, body)
	}
	var jr jsonReplaceResult
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("response is not a jsonReplaceResult: %v\n%s", err, body)
	}
	if jr.PoolStrategy != "two_hop" {
		t.Errorf("pool_strategy = %q, want two_hop", jr.PoolStrategy)
	}
	// On the Alice—Bob—Carol path graph, departing Bob from {Alice, Bob}
	// leaves Carol as the only candidate.
	if len(jr.Replacements) != 1 || jr.Replacements[0].Node != 2 || jr.Replacements[0].Label != "Carol" {
		t.Fatalf("replacements = %+v, want exactly Carol (node 2)", jr.Replacements)
	}
	if jr.Replacements[0].Score <= 0 || jr.Replacements[0].Score > 1 {
		t.Errorf("score %v outside (0,1]", jr.Replacements[0].Score)
	}

	for _, tc := range []struct {
		name, body string
	}{
		{"garbage", `{`},
		{"unknown_field", `{"team":[0,1],"departing":[1],"frogs":1}`},
		{"no_departing", `{"team":[0,1]}`},
		{"departing_off_team", `{"team":[0,1],"departing":[2]}`},
		{"everyone_departs", `{"team":[0,1],"departing":[0,1]}`},
	} {
		resp, err := http.Post(srv.URL+"/v1/replace", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}

	resp, err = http.Get(srv.URL + "/v1/replace")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/replace: status = %d, want 405", resp.StatusCode)
	}
}

// TestRunReplaceVerb drives the `ceps replace` CLI verb end to end on a
// graph file: listing output, JSON output, and usage errors.
func TestRunReplaceVerb(t *testing.T) {
	path := writeGraphFile(t)

	var out, errb bytes.Buffer
	code := run([]string{"replace", "-graph", path, "-team", "Alice,Bob", "-departing", "Bob"}, &out, &errb)
	if code != exitOK {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	text := out.String()
	if !strings.Contains(text, "pool two_hop") || !strings.Contains(text, "Carol") {
		t.Errorf("listing output missing pool/candidate:\n%s", text)
	}

	out.Reset()
	errb.Reset()
	code = run([]string{"replace", "-graph", path, "-team", "Alice,Bob", "-departing", "Bob", "-json"}, &out, &errb)
	if code != exitOK {
		t.Fatalf("-json exit = %d, stderr: %s", code, errb.String())
	}
	var jr jsonReplaceResult
	if err := json.Unmarshal(out.Bytes(), &jr); err != nil {
		t.Fatalf("-json output is not a jsonReplaceResult: %v\n%s", err, out.String())
	}
	if len(jr.Replacements) != 1 || jr.Replacements[0].Label != "Carol" {
		t.Errorf("-json replacements = %+v, want Carol", jr.Replacements)
	}

	for _, tc := range []struct {
		name string
		argv []string
	}{
		{"missing_flags", []string{"replace", "-graph", path}},
		{"bad_pool", []string{"replace", "-graph", path, "-team", "Alice,Bob", "-departing", "Bob", "-pool", "sparsest"}},
		{"bad_norm", []string{"replace", "-graph", path, "-team", "Alice,Bob", "-departing", "Bob", "-norm", "frogs"}},
	} {
		out.Reset()
		errb.Reset()
		if code := run(tc.argv, &out, &errb); code != exitUsage {
			t.Errorf("%s: exit = %d, want %d", tc.name, code, exitUsage)
		}
	}

	// Engine-level validation failures exit with the generic error code.
	out.Reset()
	errb.Reset()
	if code := run([]string{"replace", "-graph", path, "-team", "Alice,Bob", "-departing", "Carol"}, &out, &errb); code != exitError {
		t.Errorf("departing off team: exit = %d, want %d", code, exitError)
	}
}
