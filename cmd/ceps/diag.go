package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"time"

	"ceps"
)

// runDiag implements `ceps diag`: pull a diagnostic bundle from a live
// server's admin endpoint (a -flight-dir armed engine).
//
//	ceps diag -admin http://host:6060 -list            list retained bundles
//	ceps diag -admin http://host:6060                  fetch the newest bundle
//	ceps diag -admin http://host:6060 -id ID           fetch a specific bundle
//	ceps diag -admin http://host:6060 -trigger         capture a fresh bundle, then fetch it
//
// The fetched archive is written to -out (default: <bundle-id>.tar.gz in
// the current directory). -trigger blocks for the server's CPU-profile
// window (2s by default), so the fresh bundle profiles the live workload.
func runDiag(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ceps diag", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		adminURL = fs.String("admin", "", "base URL of the server's admin endpoint, e.g. http://localhost:6060 (required)")
		list     = fs.Bool("list", false, "list retained bundles instead of fetching one")
		id       = fs.String("id", "", "fetch this bundle id (default: the newest)")
		trigger  = fs.Bool("trigger", false, "capture a fresh bundle before fetching (blocks for the server's CPU-profile window)")
		reason   = fs.String("reason", "", "note recorded with a -trigger capture")
		out      = fs.String("out", "", "output path for the fetched archive (default: <bundle-id>.tar.gz)")
		timeout  = fs.Duration("timeout", 60*time.Second, "HTTP timeout for each admin request")
	)
	if err := fs.Parse(argv); err != nil {
		return exitUsage
	}
	if *adminURL == "" {
		fs.Usage()
		return exitUsage
	}
	if *list && (*trigger || *id != "") {
		fmt.Fprintln(stderr, "ceps diag: -list is exclusive with -trigger and -id")
		return exitUsage
	}
	if *trigger && *id != "" {
		fmt.Fprintln(stderr, "ceps diag: -trigger captures a new bundle; it is exclusive with -id")
		return exitUsage
	}
	base, err := url.Parse(*adminURL)
	if err != nil || base.Scheme == "" || base.Host == "" {
		fmt.Fprintf(stderr, "ceps diag: -admin %q is not an absolute URL\n", *adminURL)
		return exitUsage
	}
	client := &http.Client{Timeout: *timeout}
	fail := func(err error) int { return failWith(err, stderr) }

	switch {
	case *list:
		bundles, err := diagList(client, base)
		if err != nil {
			return fail(err)
		}
		if len(bundles) == 0 {
			fmt.Fprintln(stdout, "no retained bundles (trigger one with: ceps diag -admin ... -trigger)")
			return exitOK
		}
		fmt.Fprintf(stdout, "%-45s %-20s %-18s %10s\n", "ID", "TIME", "TRIGGER", "SIZE")
		for _, b := range bundles {
			fmt.Fprintf(stdout, "%-45s %-20s %-18s %10d\n",
				b.ID, b.Time.Format(time.RFC3339), b.Trigger, b.SizeBytes)
		}
		return exitOK

	case *trigger:
		info, err := diagTrigger(client, base, *reason)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "captured %s (%d bytes)\n", info.ID, info.SizeBytes)
		return diagFetch(client, base, info.ID, *out, stdout, stderr)

	default:
		bid := *id
		if bid == "" {
			bundles, err := diagList(client, base)
			if err != nil {
				return fail(err)
			}
			if len(bundles) == 0 {
				fmt.Fprintln(stderr, "ceps diag: server retains no bundles; capture one with -trigger")
				return exitError
			}
			bid = bundles[0].ID // list is newest first
		}
		return diagFetch(client, base, bid, *out, stdout, stderr)
	}
}

// diagError decodes a flight endpoint's JSON error body, falling back to
// the raw status.
func diagError(resp *http.Response) error {
	var fe struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(body, &fe) == nil && fe.Error != "" {
		return fmt.Errorf("server: %s (HTTP %d)", fe.Error, resp.StatusCode)
	}
	return fmt.Errorf("server answered HTTP %d", resp.StatusCode)
}

// diagList fetches /debug/flight's bundle listing (newest first).
func diagList(client *http.Client, base *url.URL) ([]ceps.BundleInfo, error) {
	resp, err := client.Get(base.JoinPath("/debug/flight").String())
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, diagError(resp)
	}
	var bundles []ceps.BundleInfo
	if err := json.NewDecoder(resp.Body).Decode(&bundles); err != nil {
		return nil, fmt.Errorf("decoding bundle list (is -admin a flight-armed ceps server?): %w", err)
	}
	return bundles, nil
}

// diagTrigger POSTs a manual capture and returns the new bundle's info.
func diagTrigger(client *http.Client, base *url.URL, reason string) (ceps.BundleInfo, error) {
	u := base.JoinPath("/debug/flight")
	q := u.Query()
	q.Set("trigger", "1")
	if reason != "" {
		q.Set("reason", reason)
	}
	u.RawQuery = q.Encode()
	resp, err := client.Post(u.String(), "", nil)
	if err != nil {
		return ceps.BundleInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ceps.BundleInfo{}, diagError(resp)
	}
	var info ceps.BundleInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return ceps.BundleInfo{}, fmt.Errorf("decoding capture response: %w", err)
	}
	return info, nil
}

// diagFetch streams one bundle archive to outPath (default <id>.tar.gz),
// writing atomically via a .partial rename so a dropped connection never
// leaves a truncated archive behind.
func diagFetch(client *http.Client, base *url.URL, id, outPath string, stdout, stderr io.Writer) int {
	fail := func(err error) int { return failWith(err, stderr) }
	u := base.JoinPath("/debug/flight")
	q := u.Query()
	q.Set("id", id)
	u.RawQuery = q.Encode()
	resp, err := client.Get(u.String())
	if err != nil {
		return fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail(diagError(resp))
	}
	if outPath == "" {
		outPath = id + ".tar.gz"
	}
	tmp := outPath + ".partial"
	f, err := os.Create(tmp)
	if err != nil {
		return fail(err)
	}
	n, err := io.Copy(f, resp.Body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, outPath)
	}
	if err != nil {
		os.Remove(tmp)
		return fail(err)
	}
	fmt.Fprintf(stdout, "%s (%d bytes)\n", outPath, n)
	return exitOK
}
