package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ceps"
)

func v1TestServer(t *testing.T, opts ...ceps.Option) (*httptest.Server, *ceps.Engine) {
	t.Helper()
	g := testGraph(t)
	eng := testEngine(t, g, append([]ceps.Option{ceps.WithCache(1 << 20)}, opts...)...)
	srv := httptest.NewServer(newQueryMux(eng, g, ceps.DefaultConfig(), 0))
	t.Cleanup(srv.Close)
	return srv, eng
}

// TestV1QueryGet: the GET parameter form resolves sources/q with the
// usual overrides and answers the v1 response schema.
func TestV1QueryGet(t *testing.T) {
	srv, _ := v1TestServer(t)

	resp, err := http.Get(srv.URL + "/v1/query?sources=0,2&budget=2")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body: %s", resp.StatusCode, body)
	}
	var jr jsonResult
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("response is not a jsonResult: %v\n%s", err, body)
	}
	if len(jr.Nodes) < 2 {
		t.Errorf("answer has %d nodes, want at least the 2 query nodes", len(jr.Nodes))
	}
	if jr.Budget != 2 {
		t.Errorf("budget override not reflected: got %d, want 2", jr.Budget)
	}

	for _, tc := range []struct {
		url  string
		want int
	}{
		{"/v1/query?q=Alice,Bob", http.StatusOK},
		{"/v1/query?q=NoSuchAuthor", http.StatusBadRequest},
		{"/v1/query", http.StatusBadRequest},
		{"/v1/query?sources=0&k=frogs", http.StatusBadRequest},
		{"/v1/query?sources=0&timeout_ms=-1", http.StatusBadRequest},
		{"/v1/query?sources=0&budget=0", http.StatusBadRequest},
	} {
		resp, err := http.Get(srv.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.url, resp.StatusCode, tc.want)
		}
	}
}

// TestV1QueryPost exercises the typed POST body: every option field is
// accepted, malformed shapes are 400 (never 500 or a panic), and the
// method/oversize contracts match the legacy endpoint.
func TestV1QueryPost(t *testing.T) {
	srv, _ := v1TestServer(t)
	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := post(`{"sources":[0,2],"k":1,"budget":2,"timeout_ms":5000,"no_degrade":true,"coalesce":false,"explain":true}`)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status = %d, body: %s", resp.StatusCode, body)
	}
	var jr jsonResult
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("response is not a jsonResult: %v\n%s", err, body)
	}
	if jr.Budget != 2 {
		t.Errorf("budget override not reflected: got %d, want 2", jr.Budget)
	}

	for _, tc := range []struct {
		name, body string
	}{
		{"garbage", `{`},
		{"trailing_data", `{"q":"Alice"} {"q":"Carol"}`},
		{"unknown_field", `{"q":"Alice","frogs":1}`},
		{"legacy_field_rejected", `{"queries":[0,2]}`},
		{"both_sources_and_q", `{"q":"Alice","sources":[0]}`},
		{"id_out_of_range", `{"sources":[0,99]}`},
		{"negative_id", `{"sources":[-1]}`},
		{"no_queries", `{}`},
		{"negative_k", `{"sources":[0],"k":-1}`},
		{"zero_budget", `{"sources":[0],"budget":0}`},
		{"negative_timeout", `{"sources":[0],"timeout_ms":-5}`},
	} {
		resp := post(tc.body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}

	resp = post(`{"q":"` + strings.Repeat("x", maxQueryBody+1) + `"}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status = %d, want 413", resp.StatusCode)
	}

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/query", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE: status = %d, want 405", resp.StatusCode)
	}
}

// TestV1Batch: per-entry results come back in input order, a bad entry
// fails alone (the envelope stays 200), and envelope-level garbage is a
// client error.
func TestV1Batch(t *testing.T) {
	srv, _ := v1TestServer(t)

	resp, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(
		`{"queries":[{"q":"Alice,Carol","budget":2},{"sources":[99]},{"sources":[1,2],"k":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body: %s", resp.StatusCode, body)
	}
	var out batchResponseV1
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("response is not a batchResponseV1: %v\n%s", err, body)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	if out.Results[0].Error != "" || out.Results[0].Result == nil {
		t.Errorf("entry 0 should answer: %+v", out.Results[0])
	}
	if out.Results[0].Result.Budget != 2 {
		t.Errorf("entry 0 budget override not reflected: %d", out.Results[0].Result.Budget)
	}
	if out.Results[1].Error == "" || out.Results[1].Result != nil {
		t.Errorf("entry 1 should fail alone: %+v", out.Results[1])
	}
	if out.Results[2].Error != "" || out.Results[2].Result == nil {
		t.Errorf("entry 2 should answer: %+v", out.Results[2])
	}

	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"garbage", `{`, http.StatusBadRequest},
		{"empty", `{"queries":[]}`, http.StatusBadRequest},
		{"unknown_field", `{"frogs":[]}`, http.StatusBadRequest},
		{"trailing", `{"queries":[{"q":"Alice"}]} x`, http.StatusBadRequest},
	} {
		resp, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	resp, err = http.Get(srv.URL + "/v1/batch")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/batch: status = %d, want 405", resp.StatusCode)
	}
}

// TestLegacyQueryDeprecation: the pre-v1 endpoint keeps answering but
// every response — success or failure — carries the deprecation headers
// pointing at the successor route.
func TestLegacyQueryDeprecation(t *testing.T) {
	srv, _ := v1TestServer(t)
	for _, url := range []string{
		"/query?q=Alice,Carol",  // 200
		"/query?q=NoSuchAuthor", // 400
	} {
		resp, err := http.Get(srv.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.Header.Get("Deprecation") != "true" {
			t.Errorf("%s: missing Deprecation header", url)
		}
		if link := resp.Header.Get("Link"); !strings.Contains(link, "/v1/query") {
			t.Errorf("%s: Link = %q, want successor pointer", url, link)
		}
	}

	// v1 responses must not be marked deprecated.
	resp, err := http.Get(srv.URL + "/v1/query?sources=0")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "" {
		t.Error("/v1/query should not carry a Deprecation header")
	}
}

// TestLegacyQueryBudgetOverride pins the fix for a silently dropped
// override: the legacy decoder always accepted a per-request budget, but
// the old handler never handed it to the engine.
func TestLegacyQueryBudgetOverride(t *testing.T) {
	srv, _ := v1TestServer(t)
	resp, err := http.Post(srv.URL+"/query", "application/json",
		strings.NewReader(`{"q":"Alice,Carol","budget":2}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body: %s", resp.StatusCode, body)
	}
	var jr jsonResult
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("bad body: %v", err)
	}
	if jr.Budget != 2 {
		t.Errorf("budget override not reflected: got %d, want 2", jr.Budget)
	}
}

// TestTraceIDOnEveryPath is the regression test for the header gap: with
// tracing on, every response must carry X-Ceps-Trace-Id — including the
// 400/405/413 paths that used to be written before the span was opened.
func TestTraceIDOnEveryPath(t *testing.T) {
	srv, _ := v1TestServer(t, ceps.WithTracing(ceps.TracingOptions{SampleRate: 1}))

	do := func(name string, req *http.Request, want int) {
		t.Helper()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: status = %d, want %d", name, resp.StatusCode, want)
		}
		if resp.Header.Get("X-Ceps-Trace-Id") == "" {
			t.Errorf("%s (%d): missing X-Ceps-Trace-Id", name, resp.StatusCode)
		}
	}
	get := func(path string) *http.Request {
		req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		return req
	}
	post := func(path, body string) *http.Request {
		req, err := http.NewRequest(http.MethodPost, srv.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return req
	}
	del := func(path string) *http.Request {
		req, err := http.NewRequest(http.MethodDelete, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		return req
	}

	do("v1 success", get("/v1/query?sources=0,2"), http.StatusOK)
	do("v1 bad request", get("/v1/query?q=NoSuchAuthor"), http.StatusBadRequest)
	do("v1 bad body", post("/v1/query", `{`), http.StatusBadRequest)
	do("v1 method", del("/v1/query"), http.StatusMethodNotAllowed)
	do("v1 oversize", post("/v1/query", `{"q":"`+strings.Repeat("x", maxQueryBody+1)+`"}`), http.StatusRequestEntityTooLarge)
	do("v1 batch success", post("/v1/batch", `{"queries":[{"sources":[0]}]}`), http.StatusOK)
	do("v1 batch bad", post("/v1/batch", `{`), http.StatusBadRequest)
	do("legacy success", get("/query?q=Alice,Carol"), http.StatusOK)
	do("legacy bad request", get("/query?q=NoSuchAuthor"), http.StatusBadRequest)
	do("legacy bad body", post("/query", `{`), http.StatusBadRequest)
	do("legacy method", del("/query"), http.StatusMethodNotAllowed)

	// The body echoes the same id for successful answers, so a client can
	// log it from either place.
	resp, err := http.Get(srv.URL + "/v1/query?sources=0,2")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	headerID := resp.Header.Get("X-Ceps-Trace-Id")
	resp.Body.Close()
	var jr jsonResult
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.TraceID == "" || jr.TraceID != headerID {
		t.Errorf("body traceId %q != header %q", jr.TraceID, headerID)
	}
}
