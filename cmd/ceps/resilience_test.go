package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"strings"
	"testing"
	"time"

	"ceps"
	"ceps/internal/fault"
)

// TestQueryStatusTable pins the full error→HTTP-status mapping. The
// overload rows matter most: admission sheds wrap the deadline identities
// so library callers' errors.Is checks keep working, and the mapping must
// still classify them as 429, not 504.
func TestQueryStatusTable(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
		want int
	}{
		{"overload_queue_full", fault.Overload("queue_full", 2*time.Second, nil), http.StatusTooManyRequests},
		{"overload_wrapping_deadline", fault.Overload("deadline_budget", time.Second, context.DeadlineExceeded), http.StatusTooManyRequests},
		{"overload_wrapping_ceps_deadline", fault.Overload("pool_wait", 0, fmt.Errorf("%w: pool wait", ceps.ErrDeadlineExceeded)), http.StatusTooManyRequests},
		{"breaker_open", fmt.Errorf("%w: circuit breaker open", ceps.ErrUnavailable), http.StatusServiceUnavailable},
		{"bad_query", fmt.Errorf("%w: no such node", ceps.ErrBadQuery), http.StatusBadRequest},
		{"bad_config", fmt.Errorf("%w: k out of range", ceps.ErrBadConfig), http.StatusBadRequest},
		{"deadline", fmt.Errorf("%w: solve", ceps.ErrDeadlineExceeded), http.StatusGatewayTimeout},
		{"raw_deadline", context.DeadlineExceeded, http.StatusGatewayTimeout},
		{"canceled", fmt.Errorf("%w: signal", ceps.ErrCanceled), 499},
		{"raw_canceled", context.Canceled, 499},
		{"internal", errors.New("wat"), http.StatusInternalServerError},
	} {
		if got := queryStatus(tc.err); got != tc.want {
			t.Errorf("%s: queryStatus(%v) = %d, want %d", tc.name, tc.err, got, tc.want)
		}
	}
}

// TestWriteQueryErrorRetryAfter: a 429 always carries Retry-After — the
// admission controller's hint rounded up to whole seconds, or 1 when the
// error carries none — and other statuses never do.
func TestWriteQueryErrorRetryAfter(t *testing.T) {
	for _, tc := range []struct {
		name   string
		status int
		err    error
		want   string // "" = header must be absent
	}{
		{"hint_rounds_up", http.StatusTooManyRequests, fault.Overload("queue_full", 1500*time.Millisecond, nil), "2"},
		{"hint_floors_at_one", http.StatusTooManyRequests, fault.Overload("codel", time.Millisecond, nil), "1"},
		{"no_hint_defaults_to_one", http.StatusTooManyRequests, errors.New("shed"), "1"},
		{"not_429_no_header", http.StatusServiceUnavailable, fault.Overload("queue_full", 5*time.Second, nil), ""},
	} {
		rec := httptest.NewRecorder()
		writeQueryError(rec, tc.status, tc.err)
		if got := rec.Header().Get("Retry-After"); got != tc.want {
			t.Errorf("%s: Retry-After = %q, want %q", tc.name, got, tc.want)
		}
		if rec.Code != tc.status {
			t.Errorf("%s: status = %d, want %d", tc.name, rec.Code, tc.status)
		}
		var body queryError
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error == "" {
			t.Errorf("%s: body is not a queryError: %v (%s)", tc.name, err, rec.Body.Bytes())
		}
	}
}

// TestQueryMuxPost exercises the POST /query JSON path end to end: a
// valid body answers, every malformed shape is a 400 (never a 500 or a
// panic), an oversized body is 413, and unsupported methods are 405.
func TestQueryMuxPost(t *testing.T) {
	g := testGraph(t)
	eng := testEngine(t, g, ceps.WithCache(1<<20))
	srv := httptest.NewServer(newQueryMux(eng, g, ceps.DefaultConfig(), 0))
	defer srv.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := post(`{"q":"Alice,Carol","budget":2,"explain":true}`)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status = %d, body: %s", resp.StatusCode, body)
	}
	var jr jsonResult
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("response is not a jsonResult: %v\n%s", err, body)
	}
	if len(jr.Nodes) < 2 {
		t.Errorf("answer has %d nodes, want at least the 2 query nodes", len(jr.Nodes))
	}

	resp = post(`{"queries":[0,2],"k":1}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("POST by ids: status = %d, want 200", resp.StatusCode)
	}

	for _, tc := range []struct {
		name, body string
	}{
		{"garbage", `{`},
		{"trailing_data", `{"q":"Alice,Bob"} {"q":"Carol"}`},
		{"unknown_field", `{"q":"Alice,Bob","frogs":1}`},
		{"both_q_and_queries", `{"q":"Alice","queries":[1]}`},
		{"id_out_of_range", `{"queries":[0,99]}`},
		{"negative_id", `{"queries":[-1]}`},
		{"no_queries", `{}`},
		{"unknown_label", `{"q":"NoSuchAuthor"}`},
	} {
		resp := post(tc.body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}

	resp = post(`{"q":"` + strings.Repeat("x", maxQueryBody+1) + `"}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status = %d, want 413", resp.StatusCode)
	}

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/query", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE: status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") || !strings.Contains(allow, "POST") {
		t.Errorf("DELETE: Allow = %q, want GET and POST", allow)
	}
}

// TestQueryMuxOverloadResponse drives a resilience-enabled engine into
// saturation through the real HTTP handler and asserts the wire contract:
// shed requests get 429 with a Retry-After header and a JSON error body.
func TestQueryMuxOverloadResponse(t *testing.T) {
	g := testGraph(t)
	eng := testEngine(t, g,
		ceps.WithWorkers(1),
		ceps.WithResilience(ceps.ResilienceOptions{MaxConcurrent: 1, MaxQueue: -1}),
		ceps.WithTracing(ceps.TracingOptions{SampleRate: 1}),
	)
	srv := httptest.NewServer(newQueryMux(eng, g, ceps.DefaultConfig(), 0))
	defer srv.Close()

	// Hold the only admission slot with an injected slow solve, then hit
	// the server again: queueing is disabled, so the second request must
	// be shed with the full 429 envelope.
	inj := fault.NewInjector(fault.Injection{
		Point: fault.InjectSolveDelay,
		Delay: 300 * time.Millisecond,
	})
	restore := fault.SetActiveInjector(inj)
	defer restore()

	firstDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/query?q=Alice,Carol")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		firstDone <- err
	}()

	// Wait until the slot-holder is actually admitted and inside its
	// delayed solve, so the next request deterministically finds the
	// admission slot taken.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st, ok := eng.ResilienceStats()
		if !ok {
			t.Fatal("engine has no resilience layer")
		}
		if st.Running >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slot-holding request was never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(srv.URL + "/query?q=Alice,Bob")
	if err != nil {
		t.Fatal(err)
	}
	dump, _ := httputil.DumpResponse(resp, false)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429:\n%s%s", resp.StatusCode, dump, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After:\n%s", dump)
	}
	// Regression: shed responses must be linkable to their trace too.
	if resp.Header.Get("X-Ceps-Trace-Id") == "" {
		t.Errorf("429 without X-Ceps-Trace-Id:\n%s", dump)
	}
	var qe queryError
	if err := json.Unmarshal(body, &qe); err != nil || qe.Error == "" {
		t.Errorf("429 body is not a queryError: %v (%s)", err, body)
	}
	if err := <-firstDone; err != nil {
		t.Fatalf("slot-holding request failed: %v", err)
	}
}

// FuzzQueryRequest drives both POST body decoders — the legacy /query
// schema and the v1 schema — with arbitrary bytes: neither may panic,
// and anything either accepts must be a well-formed query set over the
// graph.
func FuzzQueryRequest(f *testing.F) {
	f.Add([]byte(`{"q":"Alice,Carol","k":1,"budget":2,"explain":true}`))
	f.Add([]byte(`{"queries":[0,1,2]}`))
	f.Add([]byte(`{"queries":[-1]}`))
	f.Add([]byte(`{"q":"Alice","queries":[0]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"q":"Alice"} trailing`))
	f.Add([]byte(`{"frogs":true}`))
	f.Add([]byte(`[`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"k":9223372036854775807,"q":"0"}`))
	f.Add([]byte(`{"sources":[0,2],"k":1,"budget":2,"timeout_ms":50,"no_degrade":true,"coalesce":false}`))
	f.Add([]byte(`{"sources":[-1]}`))
	f.Add([]byte(`{"sources":[0],"q":"Alice"}`))
	f.Add([]byte(`{"timeout_ms":-1,"sources":[0]}`))
	f.Add([]byte(`{"coalesce":null,"sources":[0]}`))

	b := ceps.NewBuilder(0)
	b.AddNode("Alice")
	b.AddNode("Bob")
	b.AddNode("Carol")
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g, err := b.Build()
	if err != nil {
		f.Fatal(err)
	}
	base := ceps.DefaultConfig()

	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) > maxQueryBody {
			return
		}
		queries, reqCfg, _, err := decodeQueryRequest(g, base, body)
		if err == nil {
			if len(queries) == 0 {
				t.Fatalf("accepted body %q with no queries", body)
			}
			for _, q := range queries {
				if q < 0 || q >= g.N() {
					t.Fatalf("accepted out-of-range query %d from %q", q, body)
				}
			}
			// Untouched fields must come from the base config.
			if reqCfg.RWR != base.RWR {
				t.Fatalf("decoder mutated RWR config: %+v", reqCfg.RWR)
			}
		}

		req, v1Queries, err := decodeQueryRequestV1(g, body)
		if err != nil {
			return // rejects are fine; panics are not
		}
		if len(v1Queries) == 0 {
			t.Fatalf("v1 accepted body %q with no queries", body)
		}
		for _, q := range v1Queries {
			if q < 0 || q >= g.N() {
				t.Fatalf("v1 accepted out-of-range query %d from %q", q, body)
			}
		}
		if req.K != nil && *req.K < 0 {
			t.Fatalf("v1 accepted negative k from %q", body)
		}
		if req.Budget != nil && *req.Budget <= 0 {
			t.Fatalf("v1 accepted non-positive budget from %q", body)
		}
		if req.TimeoutMS < 0 {
			t.Fatalf("v1 accepted negative timeout_ms from %q", body)
		}
	})
}
