package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBatchFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "queries.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadQueryRequests(t *testing.T) {
	g := testGraph(t)
	path := writeBatchFile(t, `
# comment line
Alice,Carol
0, 2   # trailing comment
Bob,Alice
`)
	reqs, err := readQueryRequests(g, path)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 2}, {0, 2}, {1, 0}}
	if len(reqs) != len(want) {
		t.Fatalf("got %d sets, want %d", len(reqs), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if reqs[i].Sources[j] != want[i][j] {
				t.Fatalf("set %d = %v, want %v", i, reqs[i].Sources, want[i])
			}
		}
	}
}

// TestReadQueryRequestsJSONLines: v1 JSON-object lines mix with legacy
// comma lines and carry per-request overrides.
func TestReadQueryRequestsJSONLines(t *testing.T) {
	g := testGraph(t)
	path := writeBatchFile(t, `
Alice,Carol
{"sources":[1,0],"k":1,"timeout_ms":50,"no_degrade":true}
{"q":"Bob,Carol","budget":3,"coalesce":false}
`)
	reqs, err := readQueryRequests(g, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 3 {
		t.Fatalf("got %d requests, want 3", len(reqs))
	}
	r := reqs[1]
	if len(r.Sources) != 2 || r.Sources[0] != 1 || r.K == nil || *r.K != 1 ||
		r.TimeoutMS != 50 || !r.NoDegrade {
		t.Fatalf("JSON line parsed as %+v", r)
	}
	r = reqs[2]
	if r.Q != "Bob,Carol" || r.Budget == nil || *r.Budget != 3 ||
		r.Coalesce == nil || *r.Coalesce {
		t.Fatalf("JSON line parsed as %+v", r)
	}
}

func TestReadQueryRequestsErrors(t *testing.T) {
	g := testGraph(t)
	if _, err := readQueryRequests(g, writeBatchFile(t, "# only comments\n")); err == nil {
		t.Error("empty batch should fail")
	}
	if _, err := readQueryRequests(g, writeBatchFile(t, "NoSuchAuthor\n")); err == nil {
		t.Error("unknown label should fail")
	}
	if _, err := readQueryRequests(g, writeBatchFile(t, `{"sources":[99]}`+"\n")); err == nil {
		t.Error("out-of-range JSON line should fail")
	}
	if _, err := readQueryRequests(g, writeBatchFile(t, `{"sources":[0],`+"\n")); err == nil {
		t.Error("malformed JSON line should fail")
	}
	if _, err := readQueryRequests(g, filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestRunBatchText(t *testing.T) {
	var out, errb bytes.Buffer
	batch := writeBatchFile(t, "Alice,Carol\nBob,Carol\n")
	code := run([]string{"-graph", writeGraphFile(t), "-queries-file", batch, "-b", "2"}, &out, &errb)
	if code != exitOK {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "--- set 1") || !strings.Contains(out.String(), "--- set 2") {
		t.Errorf("missing per-set output: %s", out.String())
	}
	if !strings.Contains(errb.String(), "cache:") {
		t.Errorf("cache stats should go to stderr: %s", errb.String())
	}
}

func TestRunBatchJSON(t *testing.T) {
	var out, errb bytes.Buffer
	batch := writeBatchFile(t, "Alice,Carol\nAlice,Carol\n")
	code := run([]string{"-graph", writeGraphFile(t), "-queries-file", batch, "-b", "2", "-json"}, &out, &errb)
	if code != exitOK {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	var items []batchItemV1
	if err := json.Unmarshal(out.Bytes(), &items); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(items) != 2 {
		t.Fatalf("got %d items, want 2", len(items))
	}
	for i, item := range items {
		if item.Error != "" || item.Result == nil {
			t.Fatalf("item %d: error %q", i, item.Error)
		}
		if len(item.Result.Nodes) == 0 {
			t.Fatalf("item %d: empty result", i)
		}
	}
	// The repeat set must be served from cache.
	if !strings.Contains(errb.String(), "hits") {
		t.Errorf("expected cache stats on stderr: %s", errb.String())
	}
}

// TestRunBatchNoCache: -cache-mb 0 turns caching off and the stats line
// disappears.
func TestRunBatchNoCache(t *testing.T) {
	var out, errb bytes.Buffer
	batch := writeBatchFile(t, "Alice,Carol\n")
	code := run([]string{"-graph", writeGraphFile(t), "-queries-file", batch, "-cache-mb", "0"}, &out, &errb)
	if code != exitOK {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	if strings.Contains(errb.String(), "cache:") {
		t.Errorf("no cache stats expected with -cache-mb 0: %s", errb.String())
	}
}

// TestRunBatchItemErrorExitCode: a failing set yields exitError but the
// healthy sets still print.
func TestRunBatchItemErrorExitCode(t *testing.T) {
	var out, errb bytes.Buffer
	// Per-set timeout impossible to meet with a huge iteration budget.
	batch := writeBatchFile(t, "Alice,Carol\n")
	code := run([]string{"-graph", writeGraphFile(t), "-queries-file", batch,
		"-m", "1000000", "-query-timeout", "1ns"}, &out, &errb)
	if code != exitError {
		t.Fatalf("exit = %d, want %d; out: %s", code, exitError, out.String())
	}
	if !strings.Contains(out.String(), "error:") {
		t.Errorf("per-set error should print inline: %s", out.String())
	}
}

// TestRunBatchOuterDeadline: the whole run hitting -timeout maps to the
// deadline exit code, as in single-query mode.
func TestRunBatchOuterDeadline(t *testing.T) {
	var out, errb bytes.Buffer
	batch := writeBatchFile(t, "Alice,Carol\n")
	code := run([]string{"-graph", writeGraphFile(t), "-queries-file", batch,
		"-m", "1000000", "-timeout", "1ns"}, &out, &errb)
	if code != exitDeadline {
		t.Fatalf("exit = %d, want %d; stderr: %s", code, exitDeadline, errb.String())
	}
}

// TestRunUsageBothQueryModes: -q and -queries-file are mutually exclusive.
func TestRunUsageBothQueryModes(t *testing.T) {
	var out, errb bytes.Buffer
	batch := writeBatchFile(t, "Alice\n")
	code := run([]string{"-graph", writeGraphFile(t), "-q", "Alice", "-queries-file", batch}, &out, &errb)
	if code != exitUsage {
		t.Fatalf("exit = %d, want %d", code, exitUsage)
	}
}

// TestReadQueryRequestsLongLine pins the scanner buffer fix: a query
// line longer than bufio.Scanner's 64 KiB default token limit must
// parse, not fail the whole batch with ErrTooLong.
func TestReadQueryRequestsLongLine(t *testing.T) {
	g := testGraph(t)
	var sb strings.Builder
	for sb.Len() < 100<<10 {
		sb.WriteString("Alice,Bob,Carol,")
	}
	sb.WriteString("Alice\n")
	reqs, err := readQueryRequests(g, writeBatchFile(t, sb.String()))
	if err != nil {
		t.Fatalf("long line should parse, got: %v", err)
	}
	if len(reqs) != 1 {
		t.Fatalf("got %d sets, want 1", len(reqs))
	}
	if want := 3*(sb.Len()/16) + 1; len(reqs[0].Sources) < 64<<10/16 {
		t.Fatalf("set has %d members, want about %d", len(reqs[0].Sources), want)
	}
}
