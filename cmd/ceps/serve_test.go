package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ceps"
	"ceps/internal/obs"
)

func testEngine(t *testing.T, g *ceps.Graph, opts ...ceps.Option) *ceps.Engine {
	t.Helper()
	eng, err := ceps.NewEngine(g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestQueryMux(t *testing.T) {
	g := testGraph(t)
	eng := testEngine(t, g, ceps.WithCache(1<<20))
	srv := httptest.NewServer(newQueryMux(eng, g, ceps.DefaultConfig(), 0))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/query?q=Alice,Carol&budget=2")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body: %s", resp.StatusCode, body)
	}
	var jr jsonResult
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("response is not a jsonResult: %v\n%s", err, body)
	}
	if len(jr.Nodes) < 2 {
		t.Errorf("answer has %d nodes, want at least the 2 query nodes", len(jr.Nodes))
	}

	for _, tc := range []struct {
		url  string
		want int
	}{
		{"/query?q=NoSuchAuthor", http.StatusBadRequest},
		{"/query", http.StatusBadRequest},
		{"/query?q=Alice,Carol&k=frogs", http.StatusBadRequest},
		{"/query?q=Alice,Carol&budget=frogs", http.StatusBadRequest},
	} {
		resp, err := http.Get(srv.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.url, resp.StatusCode, tc.want)
		}
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status = %d", resp.StatusCode)
	}
}

// TestServeListeners is the end-to-end serve-mode smoke test: real TCP
// listeners, a query answered over HTTP, the admin endpoint scraped and
// validated, then a clean signal-style shutdown.
func TestServeListeners(t *testing.T) {
	g := testGraph(t)
	eng := testEngine(t, g, ceps.WithCache(1<<20))

	queryLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	adminLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var stderr bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- serveListeners(ctx, eng, g, ceps.DefaultConfig(), time.Second, defaultShutdownGrace, queryLn, adminLn, &stderr)
	}()

	resp, err := http.Get("http://" + queryLn.Addr().String() + "/query?q=Alice,Bob")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d, body: %s", resp.StatusCode, body)
	}

	resp, err = http.Get("http://" + adminLn.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if _, _, err := obs.ValidateExposition(bytes.NewReader(metrics)); err != nil {
		t.Fatalf("malformed exposition: %v", err)
	}
	if !strings.Contains(string(metrics), `ceps_queries_total{path="full"} 1`) {
		t.Errorf("metrics should count the served query:\n%s", metrics)
	}

	cancel()
	select {
	case code := <-done:
		if code != exitSignal {
			t.Errorf("exit = %d, want %d (signal)", code, exitSignal)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveListeners did not shut down")
	}
}

func TestRunServeFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-graph", writeGraphFile(t), "-serve", ":0", "-q", "Alice"}, &out, &errb); code != exitUsage {
		t.Errorf("-serve with -q: exit = %d, want %d", code, exitUsage)
	}
	if code := run([]string{"-graph", writeGraphFile(t), "-q", "Alice,Bob", "-slow-log", "-1s"}, &out, &errb); code != exitUsage {
		t.Errorf("negative -slow-log: exit = %d, want %d", code, exitUsage)
	}
}

// TestRunSlowLogFlag pins the -slow-log wiring: a one-shot query over the
// threshold emits a JSON entry on stderr.
func TestRunSlowLogFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-graph", writeGraphFile(t), "-q", "Alice,Carol", "-slow-log", "1ns"}, &out, &errb)
	if code != exitOK {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	var entry ceps.SlowQueryEntry
	for _, line := range strings.Split(errb.String(), "\n") {
		if strings.HasPrefix(line, "{") {
			if err := json.Unmarshal([]byte(line), &entry); err != nil {
				t.Fatalf("slow-log line is not JSON: %v\n%s", err, line)
			}
			break
		}
	}
	if len(entry.Queries) != 2 || entry.ElapsedMS <= 0 {
		t.Errorf("slow-log entry missing fields: %+v (stderr: %s)", entry, errb.String())
	}
}
