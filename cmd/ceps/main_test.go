package main

import (
	"encoding/json"
	"strings"
	"testing"

	"ceps"
)

func testGraph(t *testing.T) *ceps.Graph {
	t.Helper()
	b := ceps.NewBuilder(0)
	b.AddNode("Alice")
	b.AddNode("Bob")
	b.AddNode("Carol")
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestParseQueriesByID(t *testing.T) {
	g := testGraph(t)
	qs, err := parseQueries(g, "0, 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs[0] != 0 || qs[1] != 2 {
		t.Fatalf("qs = %v", qs)
	}
}

func TestParseQueriesByLabel(t *testing.T) {
	g := testGraph(t)
	qs, err := parseQueries(g, "Alice,Carol")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs[0] != 0 || qs[1] != 2 {
		t.Fatalf("qs = %v", qs)
	}
}

func TestParseQueriesMixed(t *testing.T) {
	g := testGraph(t)
	qs, err := parseQueries(g, "Bob, 2,")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs[0] != 1 || qs[1] != 2 {
		t.Fatalf("qs = %v", qs)
	}
}

func TestWriteJSON(t *testing.T) {
	g := testGraph(t)
	cfg := ceps.DefaultConfig()
	cfg.Budget = 2
	res, err := ceps.Query(g, []int{0, 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := writeJSON(&sb, g, res, []int{0, 2}, cfg, true); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if out["queryType"] != "AND" {
		t.Errorf("queryType = %v", out["queryType"])
	}
	nodes := out["nodes"].([]any)
	if len(nodes) < 3 {
		t.Fatalf("nodes = %v", nodes)
	}
	// Sorted by descending score.
	prev := 2.0
	for _, n := range nodes {
		s := n.(map[string]any)["score"].(float64)
		if s > prev {
			t.Fatal("nodes not sorted by score")
		}
		prev = s
	}
}

func TestParseQueriesErrors(t *testing.T) {
	g := testGraph(t)
	for _, in := range []string{"", " , ", "Nobody", "99", "-1"} {
		if _, err := parseQueries(g, in); err == nil {
			t.Errorf("parseQueries(%q) should fail", in)
		}
	}
}
