package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"ceps"
)

// This file is the versioned query API: one typed QueryRequest schema
// shared by POST /v1/query, POST /v1/batch, the GET parameter form, and
// the CLI -queries-file format (JSON-object lines). The legacy /query
// endpoint stays as a deprecated alias; see newQueryMux. The schema maps
// field-for-field onto the engine's QueryOption surface:
//
//	{
//	  "sources": [1, 2],          // node ids — or "q": "Alice,Bob" (ids or labels)
//	  "k": 2,                     // optional K_softAND override (0 = AND)
//	  "budget": 20,               // optional output budget override
//	  "timeout_ms": 250,          // optional per-request deadline (caps the server default)
//	  "no_degrade": true,         // fail 503 instead of a reduced-fidelity answer
//	  "coalesce": false,          // opt this request out of (or into) solve coalescing
//	  "explain": true             // include per-node why-lines
//	}

// queryRequestV1 is the v1 query schema. Exactly one of Sources (node
// ids) and Q (comma-separated ids or labels, as with -q) must be set.
type queryRequestV1 struct {
	Sources   []int  `json:"sources,omitempty"`
	Q         string `json:"q,omitempty"`
	K         *int   `json:"k,omitempty"`
	Budget    *int   `json:"budget,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
	NoDegrade bool   `json:"no_degrade,omitempty"`
	Coalesce  *bool  `json:"coalesce,omitempty"`
	Explain   bool   `json:"explain,omitempty"`
}

// batchRequestV1 is the POST /v1/batch body: an array of v1 query
// requests executed concurrently under one engine snapshot.
type batchRequestV1 struct {
	Queries []queryRequestV1 `json:"queries"`
}

// batchItemV1 is one entry of a /v1/batch response; exactly one of Error
// and Result is set, in input order.
type batchItemV1 struct {
	Queries []int       `json:"queries,omitempty"`
	Error   string      `json:"error,omitempty"`
	Result  *jsonResult `json:"result,omitempty"`

	// err retains the typed error for the CLI's exit-code classification
	// (deadline vs plain failure); it never serializes.
	err error
}

type batchResponseV1 struct {
	Results []batchItemV1 `json:"results"`
}

// maxV1BatchSets bounds one /v1/batch request. The body size cap already
// bounds bytes; this bounds fan-out.
const maxV1BatchSets = 1024

// decodeQueryRequestV1 parses one v1 request body against the graph. It
// is a pure function over its inputs so FuzzQueryRequest can drive it
// with arbitrary bodies; every failure is a client error (HTTP 400),
// never a panic.
func decodeQueryRequestV1(g *ceps.Graph, body []byte) (req queryRequestV1, queries []int, err error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, nil, fmt.Errorf("bad request body: %w", err)
	}
	if dec.More() {
		return req, nil, fmt.Errorf("bad request body: trailing data after JSON object")
	}
	queries, err = resolveQueryRequestV1(g, &req)
	return req, queries, err
}

// decodeBatchRequestV1 parses a POST /v1/batch body; per-entry failures
// are deferred to execution (they land in the entry's result item), but a
// malformed envelope fails the whole request.
func decodeBatchRequestV1(body []byte) (batchRequestV1, error) {
	var req batchRequestV1
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("bad request body: %w", err)
	}
	if dec.More() {
		return req, fmt.Errorf("bad request body: trailing data after JSON object")
	}
	if len(req.Queries) == 0 {
		return req, fmt.Errorf(`bad request body: "queries" must be a non-empty array`)
	}
	if len(req.Queries) > maxV1BatchSets {
		return req, fmt.Errorf("bad request body: %d query sets exceed the per-request limit of %d", len(req.Queries), maxV1BatchSets)
	}
	return req, nil
}

// resolveQueryRequestV1 validates a decoded v1 request and resolves its
// query node set.
func resolveQueryRequestV1(g *ceps.Graph, req *queryRequestV1) (queries []int, err error) {
	switch {
	case req.Q != "" && len(req.Sources) > 0:
		return nil, fmt.Errorf(`set "sources" or "q", not both`)
	case len(req.Sources) > 0:
		for _, id := range req.Sources {
			if id < 0 || id >= g.N() {
				return nil, fmt.Errorf("source id %d out of range [0,%d)", id, g.N())
			}
		}
		queries = req.Sources
	default:
		queries, err = parseQueries(g, req.Q)
		if err != nil {
			return nil, err
		}
	}
	if req.K != nil && *req.K < 0 {
		return nil, fmt.Errorf("k %d must not be negative", *req.K)
	}
	if req.Budget != nil && *req.Budget <= 0 {
		return nil, fmt.Errorf("budget %d must be positive", *req.Budget)
	}
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("timeout_ms %d must not be negative", req.TimeoutMS)
	}
	return queries, nil
}

// parseQueryParamsV1 builds a v1 request from GET /v1/query URL
// parameters (sources, q, k, budget, timeout_ms, no_degrade, coalesce,
// explain) and resolves it against the graph.
func parseQueryParamsV1(g *ceps.Graph, params map[string][]string) (req queryRequestV1, queries []int, err error) {
	get := func(key string) string {
		if vs := params[key]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	atoi := func(key string) (*int, error) {
		v := get(key)
		if v == "" {
			return nil, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("bad %s %q: %w", key, v, err)
		}
		return &n, nil
	}
	if v := get("sources"); v != "" {
		req.Q = v // same comma syntax; ids and labels both resolve
	} else {
		req.Q = get("q")
	}
	if req.K, err = atoi("k"); err != nil {
		return req, nil, err
	}
	if req.Budget, err = atoi("budget"); err != nil {
		return req, nil, err
	}
	if t, err := atoi("timeout_ms"); err != nil {
		return req, nil, err
	} else if t != nil {
		req.TimeoutMS = *t
	}
	req.NoDegrade = get("no_degrade") != ""
	if v := get("coalesce"); v != "" {
		on := v != "0" && v != "false"
		req.Coalesce = &on
	}
	req.Explain = get("explain") != ""
	queries, err = resolveQueryRequestV1(g, &req)
	return req, queries, err
}

// displayConfigV1 folds a request's overrides into the engine's base
// config for rendering (queryType, budget fields of the JSON result).
// The engine itself is never mutated; Do applies the same overrides via
// options.
func displayConfigV1(base ceps.Config, req queryRequestV1) ceps.Config {
	if req.K != nil {
		base.K = *req.K
	}
	if req.Budget != nil {
		base.Budget = *req.Budget
	}
	return base
}

// queryOptionsV1 maps a v1 request onto the engine's per-call options.
// defaultTimeout is the server-wide -query-timeout; a per-request
// timeout_ms may only tighten it, so one client cannot opt out of the
// operator's deadline policy.
func queryOptionsV1(req queryRequestV1, defaultTimeout time.Duration) []ceps.QueryOption {
	var opts []ceps.QueryOption
	if req.K != nil {
		opts = append(opts, ceps.WithK(*req.K))
	}
	if req.Budget != nil {
		opts = append(opts, ceps.WithQueryBudget(*req.Budget))
	}
	timeout := defaultTimeout
	if d := time.Duration(req.TimeoutMS) * time.Millisecond; d > 0 && (timeout <= 0 || d < timeout) {
		timeout = d
	}
	if timeout > 0 {
		opts = append(opts, ceps.WithQueryTimeout(timeout))
	}
	if req.NoDegrade {
		opts = append(opts, ceps.WithNoDegrade())
	}
	if req.Coalesce != nil {
		opts = append(opts, ceps.WithCoalesceHint(*req.Coalesce))
	}
	return opts
}

// execRequestV1 answers one resolved v1 request through the unified Do
// surface. It is shared by /v1/query, /v1/batch, and the CLI batch mode.
func execRequestV1(ctx context.Context, eng *ceps.Engine, queries []int, req queryRequestV1, defaultTimeout time.Duration) (*ceps.Result, error) {
	return eng.Do(ctx, queries, queryOptionsV1(req, defaultTimeout)...)
}

// readBody drains a bounded request body, classifying oversize as 413.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, int, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxQueryBody))
	if err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		return nil, status, fmt.Errorf("reading request body: %w", err)
	}
	return body, http.StatusOK, nil
}

// handleQueryV1 serves GET and POST /v1/query. The caller has already
// opened the request trace and stamped X-Ceps-Trace-Id.
func handleQueryV1(eng *ceps.Engine, g *ceps.Graph, cfg ceps.Config, defaultTimeout time.Duration) traceHandler {
	return func(ctx context.Context, span *ceps.Span, w http.ResponseWriter, r *http.Request) {
		var (
			req     queryRequestV1
			queries []int
			err     error
		)
		switch r.Method {
		case http.MethodGet:
			req, queries, err = parseQueryParamsV1(g, r.URL.Query())
		case http.MethodPost:
			var body []byte
			var status int
			body, status, err = readBody(w, r)
			if err != nil {
				writeQueryError(w, status, err)
				return
			}
			req, queries, err = decodeQueryRequestV1(g, body)
		default:
			w.Header().Set("Allow", "GET, POST")
			writeQueryError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
			return
		}
		if err != nil {
			writeQueryError(w, http.StatusBadRequest, err)
			return
		}
		res, err := execRequestV1(ctx, eng, queries, req, defaultTimeout)
		if err != nil {
			span.SetError(err)
			writeQueryError(w, queryStatus(err), err)
			return
		}
		writeQueryResult(w, g, res, queries, displayConfigV1(cfg, req), req.Explain)
	}
}

// handleBatchV1 serves POST /v1/batch: every entry of the array runs
// concurrently (bounded fan-out; solves are additionally bounded by the
// engine's pool), and per-entry failures land in the entry's item without
// failing the batch — the HTTP status describes the envelope only.
func handleBatchV1(eng *ceps.Engine, g *ceps.Graph, cfg ceps.Config, defaultTimeout time.Duration) traceHandler {
	return func(ctx context.Context, span *ceps.Span, w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", "POST")
			writeQueryError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
			return
		}
		body, status, err := readBody(w, r)
		if err != nil {
			writeQueryError(w, status, err)
			return
		}
		batch, err := decodeBatchRequestV1(body)
		if err != nil {
			writeQueryError(w, http.StatusBadRequest, err)
			return
		}
		out := batchResponseV1{Results: execBatchV1(ctx, eng, g, cfg, batch.Queries, defaultTimeout)}
		for _, item := range out.Results {
			if item.Error != "" {
				span.SetError(errors.New(item.Error))
				break
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	}
}

// execBatchV1 runs a slice of v1 requests with bounded concurrency and
// returns items in input order. Shared by POST /v1/batch and the CLI
// -queries-file batch mode (which is why it does not touch HTTP types).
func execBatchV1(ctx context.Context, eng *ceps.Engine, g *ceps.Graph, cfg ceps.Config, reqs []queryRequestV1, defaultTimeout time.Duration) []batchItemV1 {
	items := make([]batchItemV1, len(reqs))
	conc := runtime.GOMAXPROCS(0)
	if conc > len(reqs) {
		conc = len(reqs)
	}
	if conc < 1 {
		conc = 1
	}
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			req := reqs[i]
			queries, err := resolveQueryRequestV1(g, &req)
			if err != nil {
				items[i].Error, items[i].err = err.Error(), err
				return
			}
			items[i].Queries = queries
			res, err := execRequestV1(ctx, eng, queries, req, defaultTimeout)
			if err != nil {
				items[i].Error, items[i].err = err.Error(), err
				return
			}
			jr := buildJSONResult(g, res, queries, displayConfigV1(cfg, req), req.Explain)
			jr.TraceID = res.TraceID
			items[i].Result = &jr
		}(i)
	}
	wg.Wait()
	return items
}

// writeQueryResult encodes one successful answer, stamping the trace id
// into the body alongside the X-Ceps-Trace-Id header.
func writeQueryResult(w http.ResponseWriter, g *ceps.Graph, res *ceps.Result, queries []int, cfg ceps.Config, explain bool) {
	w.Header().Set("Content-Type", "application/json")
	jr := buildJSONResult(g, res, queries, cfg, explain)
	jr.TraceID = res.TraceID
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(jr)
}
