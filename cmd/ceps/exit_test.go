package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeGraphFile(t *testing.T) string {
	t.Helper()
	g := testGraph(t)
	path := filepath.Join(t.TempDir(), "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExitOK(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-graph", writeGraphFile(t), "-q", "Alice,Carol", "-b", "2"}, &out, &errb)
	if code != exitOK {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "subgraph:") {
		t.Errorf("unexpected output: %s", out.String())
	}
}

func TestRunExitUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != exitUsage {
		t.Fatalf("missing flags: exit = %d, want %d", code, exitUsage)
	}
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != exitUsage {
		t.Fatalf("bad flag: exit = %d, want %d", code, exitUsage)
	}
	if code := run([]string{"-graph", writeGraphFile(t), "-q", "Alice", "-norm", "bogus"}, &out, &errb); code != exitUsage {
		t.Fatalf("bad norm: exit = %d, want %d", code, exitUsage)
	}
}

func TestRunExitError(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-graph", filepath.Join(t.TempDir(), "missing.txt"), "-q", "0"}, &out, &errb)
	if code != exitError {
		t.Fatalf("exit = %d, want %d", code, exitError)
	}
	code = run([]string{"-graph", writeGraphFile(t), "-q", "NoSuchAuthor"}, &out, &errb)
	if code != exitError {
		t.Fatalf("unknown label: exit = %d, want %d", code, exitError)
	}
}

// TestRunExitDeadline: an immediately expiring -timeout must map onto the
// dedicated deadline exit code, not the generic error one.
func TestRunExitDeadline(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-graph", writeGraphFile(t), "-q", "Alice,Carol", "-m", "1000000", "-timeout", "1ns"}, &out, &errb)
	if code != exitDeadline {
		t.Fatalf("exit = %d, want %d; stderr: %s", code, exitDeadline, errb.String())
	}
}
