package main

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ceps"
	"ceps/internal/obs"
)

func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d, body: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// flightTestServer arms an engine's flight recorder and serves its admin
// mux — the surface `ceps diag` talks to.
func flightTestServer(t *testing.T) (*ceps.Engine, *httptest.Server) {
	t.Helper()
	g := testGraph(t)
	eng := testEngine(t, g,
		ceps.WithCache(1<<20),
		ceps.WithFlightRecorder(ceps.FlightRecorderOptions{
			Dir:        t.TempDir(),
			CPUProfile: -1, // unit tests must not sleep 2s per capture
		}))
	t.Cleanup(func() { eng.Close() })
	srv := httptest.NewServer(obs.AdminMux(eng.Metrics(), adminOptions(eng)...))
	t.Cleanup(srv.Close)
	return eng, srv
}

func TestDiagListTriggerFetch(t *testing.T) {
	_, srv := flightTestServer(t)

	var out, errb bytes.Buffer
	if code := run([]string{"diag", "-admin", srv.URL, "-list"}, &out, &errb); code != exitOK {
		t.Fatalf("diag -list: exit = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "no retained bundles") {
		t.Errorf("fresh server should list no bundles, got: %s", out.String())
	}

	// Trigger a capture and fetch it in one invocation.
	outPath := filepath.Join(t.TempDir(), "bundle.tar.gz")
	out.Reset()
	errb.Reset()
	if code := run([]string{"diag", "-admin", srv.URL, "-trigger", "-reason", "cli test", "-out", outPath}, &out, &errb); code != exitOK {
		t.Fatalf("diag -trigger: exit = %d, stderr: %s", code, errb.String())
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatalf("fetched archive missing: %v", err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("fetched file is not gzip: %v", err)
	}
	members := map[string]bool{}
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("fetched file is not a tar archive: %v", err)
		}
		members[hdr.Name] = true
	}
	for _, want := range []string{"index.json", "evidence.json", "metrics.prom", "stats.json"} {
		if !members[want] {
			t.Errorf("fetched bundle is missing %s (has %v)", want, members)
		}
	}

	// The listing now shows the bundle, and the default (no -id) fetch
	// resolves to it.
	out.Reset()
	if code := run([]string{"diag", "-admin", srv.URL, "-list"}, &out, &errb); code != exitOK {
		t.Fatalf("diag -list after capture: exit = %d", code)
	}
	if !strings.Contains(out.String(), "manual") {
		t.Errorf("listing should show the manual bundle, got: %s", out.String())
	}

	dir := t.TempDir()
	defPath := filepath.Join(dir, "newest.tar.gz")
	if code := run([]string{"diag", "-admin", srv.URL, "-out", defPath}, &out, &errb); code != exitOK {
		t.Fatalf("diag newest fetch: exit = %d, stderr: %s", code, errb.String())
	}
	if _, err := os.Stat(defPath); err != nil {
		t.Errorf("newest-bundle fetch wrote nothing: %v", err)
	}
}

func TestDiagUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	for _, argv := range [][]string{
		{"diag"},
		{"diag", "-admin", "not-a-url"},
		{"diag", "-admin", "http://x", "-list", "-trigger"},
		{"diag", "-admin", "http://x", "-trigger", "-id", "z"},
	} {
		if code := run(argv, &out, &errb); code != exitUsage {
			t.Errorf("%v: exit = %d, want %d", argv, code, exitUsage)
		}
	}
}

func TestVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-version"}, &out, &errb); code != exitOK {
		t.Fatalf("-version: exit = %d", code)
	}
	if !strings.Contains(out.String(), ceps.Version) || !strings.Contains(out.String(), "go1") {
		t.Errorf("-version output %q should carry %q and the go version", out.String(), ceps.Version)
	}
}

// TestHealthzCarriesVersion pins the rollout-confirmation contract: the
// same version string is reachable from the query port, the admin port,
// and the build-info metric.
func TestHealthzCarriesVersion(t *testing.T) {
	g := testGraph(t)
	eng := testEngine(t, g)
	qsrv := httptest.NewServer(newQueryMux(eng, g, ceps.DefaultConfig(), 0))
	defer qsrv.Close()
	asrv := httptest.NewServer(obs.AdminMux(eng.Metrics(), adminOptions(eng)...))
	defer asrv.Close()

	for _, u := range []string{qsrv.URL + "/healthz", asrv.URL + "/healthz"} {
		body := httpGetBody(t, u)
		if !strings.HasPrefix(body, "ok") || !strings.Contains(body, ceps.Version) {
			t.Errorf("%s = %q, want ok-prefixed with version %s", u, body, ceps.Version)
		}
	}
	metrics := httpGetBody(t, asrv.URL+"/metrics")
	if !strings.Contains(metrics, `ceps_build_info{version="`+ceps.Version+`"`) {
		t.Errorf("/metrics should carry ceps_build_info with version %s", ceps.Version)
	}
}
