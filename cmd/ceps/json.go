package main

import (
	"encoding/json"
	"io"
	"sort"

	"ceps"
)

// jsonResult is the machine-readable form of a query answer. It doubles
// as the v1 QueryResponse schema: /v1/query returns one, /v1/batch an
// array of them wrapped in per-item envelopes.
type jsonResult struct {
	TraceID    string     `json:"traceId,omitempty"`
	QueryType  string     `json:"queryType"`
	Budget     int        `json:"budget"`
	ResponseMS float64    `json:"responseMs"`
	NRatio     float64    `json:"nRatio"`
	ERatio     *float64   `json:"eRatio,omitempty"`
	Degraded   string     `json:"degraded,omitempty"`
	Queries    []int      `json:"queries"`
	Nodes      []jsonNode `json:"nodes"`
	PathEdges  []jsonEdge `json:"pathEdges"`
}

type jsonNode struct {
	ID      int     `json:"id"`
	Label   string  `json:"label"`
	Score   float64 `json:"score"`
	IsQuery bool    `json:"isQuery,omitempty"`
	Why     string  `json:"why,omitempty"`
}

type jsonEdge struct {
	U      int     `json:"u"`
	V      int     `json:"v"`
	Weight float64 `json:"w"`
}

// writeJSON serializes a query result, sorted by descending combined score.
func writeJSON(w io.Writer, g *ceps.Graph, res *ceps.Result, queries []int, cfg ceps.Config, explain bool) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(buildJSONResult(g, res, queries, cfg, explain))
}

// buildJSONResult assembles the machine-readable form of one answer; batch
// mode emits an array of these.
func buildJSONResult(g *ceps.Graph, res *ceps.Result, queries []int, cfg ceps.Config, explain bool) jsonResult {
	isQuery := make(map[int]bool, len(queries))
	for _, q := range queries {
		isQuery[q] = true
	}
	out := jsonResult{
		QueryType:  cfg.QueryTypeName(len(queries)),
		Budget:     cfg.Budget,
		ResponseMS: float64(res.Elapsed.Microseconds()) / 1000,
		NRatio:     res.NRatio(),
		Queries:    queries,
	}
	if er, err := res.ERatio(); err == nil {
		out.ERatio = &er
	}
	if res.Degraded != nil {
		out.Degraded = res.Degraded.String()
	}
	for _, u := range res.Subgraph.Nodes {
		n := jsonNode{ID: u, Label: g.Label(u), IsQuery: isQuery[u]}
		w := u
		if res.ToOrig != nil {
			w = sort.SearchInts(res.ToOrig, u)
		}
		n.Score = res.Combined[w]
		if explain && !isQuery[u] {
			if line, ok := res.Explain(u); ok {
				n.Why = line
			}
		}
		out.Nodes = append(out.Nodes, n)
	}
	sort.SliceStable(out.Nodes, func(a, b int) bool { return out.Nodes[a].Score > out.Nodes[b].Score })
	for _, e := range res.Subgraph.PathEdges {
		out.PathEdges = append(out.PathEdges, jsonEdge{U: e.U, V: e.V, Weight: e.W})
	}
	return out
}
