package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"ceps"
	"ceps/internal/obs"
)

// serveShutdownGrace bounds how long in-flight HTTP requests may run after
// a shutdown signal before the listeners are torn down hard.
const serveShutdownGrace = 5 * time.Second

// queryError is the JSON error body of the query endpoint.
type queryError struct {
	Error string `json:"error"`
}

// newQueryMux builds the public query API:
//
//	GET /query?q=Alice,Bob[&k=N][&budget=N][&explain=1]   JSON result
//	GET /healthz                                          liveness
//
// Query nodes are ids or labels, as with -q. Per-request k and budget
// override the engine's configuration without mutating it. The admin
// surface (metrics, pprof) deliberately lives on its own mux/port so the
// profiler is never exposed on the public address.
func newQueryMux(eng *ceps.Engine, g *ceps.Graph, cfg ceps.Config, queryTimeout time.Duration) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		queries, err := parseQueries(g, q.Get("q"))
		if err != nil {
			writeQueryError(w, http.StatusBadRequest, err)
			return
		}
		reqCfg := cfg
		if v := q.Get("k"); v != "" {
			k, err := strconv.Atoi(v)
			if err != nil {
				writeQueryError(w, http.StatusBadRequest, fmt.Errorf("bad k %q: %w", v, err))
				return
			}
			reqCfg.K = k
		}
		if v := q.Get("budget"); v != "" {
			b, err := strconv.Atoi(v)
			if err != nil {
				writeQueryError(w, http.StatusBadRequest, fmt.Errorf("bad budget %q: %w", v, err))
				return
			}
			reqCfg.Budget = b
		}
		ctx := r.Context()
		if queryTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, queryTimeout)
			defer cancel()
		}
		// The handler's root span puts the HTTP envelope on the waterfall
		// and stamps the trace id on the response before the query runs, so
		// even failed or timed-out requests are linkable to their trace.
		ctx, span := eng.StartTrace(ctx, "http_query")
		defer span.End()
		if id := span.TraceID(); id != "" {
			w.Header().Set("X-Ceps-Trace-Id", id)
		}
		res, err := eng.QueryKSoftANDCtx(ctx, reqCfg.K, queries...)
		if err != nil {
			span.SetError(err)
			writeQueryError(w, queryStatus(err), err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		jr := buildJSONResult(g, res, queries, reqCfg, q.Get("explain") != "")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(jr)
	})
	return mux
}

// queryStatus maps the library's error taxonomy onto HTTP statuses.
func queryStatus(err error) int {
	switch {
	case errors.Is(err, ceps.ErrBadQuery) || errors.Is(err, ceps.ErrBadConfig):
		return http.StatusBadRequest
	case errors.Is(err, ceps.ErrDeadlineExceeded) || errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, ceps.ErrCanceled) || errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusInternalServerError
	}
}

func writeQueryError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(queryError{Error: err.Error()})
}

// serveListeners runs the query API on queryLn and, when adminLn is
// non-nil, the admin surface (metrics, health, pprof) on adminLn, until
// ctx is canceled; then both servers drain gracefully. It owns and closes
// the listeners.
func serveListeners(ctx context.Context, eng *ceps.Engine, g *ceps.Graph, cfg ceps.Config, queryTimeout time.Duration, queryLn, adminLn net.Listener, stderr io.Writer) int {
	servers := []*http.Server{{
		Handler:           newQueryMux(eng, g, cfg, queryTimeout),
		ReadHeaderTimeout: 10 * time.Second,
	}}
	listeners := []net.Listener{queryLn}
	fmt.Fprintf(stderr, "serving queries on http://%s/query\n", queryLn.Addr())
	if adminLn != nil {
		servers = append(servers, &http.Server{
			Handler:           obs.AdminMux(eng.Metrics(), obs.WithTraceStore(eng.TraceStore())),
			ReadHeaderTimeout: 10 * time.Second,
		})
		listeners = append(listeners, adminLn)
		fmt.Fprintf(stderr, "admin endpoint on http://%s/metrics\n", adminLn.Addr())
	}

	errc := make(chan error, len(servers))
	for i, srv := range servers {
		go func(srv *http.Server, ln net.Listener) {
			errc <- srv.Serve(ln)
		}(srv, listeners[i])
	}

	code := exitOK
	select {
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			code = exitDeadline
		} else {
			code = exitSignal
		}
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "ceps:", err)
			code = exitError
		}
	}
	shCtx, cancel := context.WithTimeout(context.Background(), serveShutdownGrace)
	defer cancel()
	for _, srv := range servers {
		srv.Shutdown(shCtx)
	}
	return code
}

// startAdmin starts the admin endpoint for a one-shot or batch run and
// returns its shutdown function. The endpoint exists so profiles and
// metrics can be pulled from a long single run (a big pre-partition, a
// wide batch) while it executes.
func startAdmin(addr string, eng *ceps.Engine, stderr io.Writer) (stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin endpoint: %w", err)
	}
	srv := &http.Server{Handler: obs.AdminMux(eng.Metrics(), obs.WithTraceStore(eng.TraceStore())), ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln)
	fmt.Fprintf(stderr, "admin endpoint on http://%s/metrics\n", ln.Addr())
	return func() {
		shCtx, cancel := context.WithTimeout(context.Background(), serveShutdownGrace)
		defer cancel()
		srv.Shutdown(shCtx)
	}, nil
}
