package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"time"

	"ceps"
	"ceps/internal/obs"
)

// defaultShutdownGrace bounds how long in-flight HTTP requests may run
// after a shutdown signal before the listeners are torn down hard; the
// -shutdown-grace flag overrides it.
const defaultShutdownGrace = 5 * time.Second

// maxQueryBody bounds a POST /query request body. Query sets are a few
// dozen ids or labels; anything near this limit is abuse, not a query.
const maxQueryBody = 1 << 20

// queryError is the JSON error body of the query endpoint.
type queryError struct {
	Error string `json:"error"`
}

// queryRequest is the POST /query JSON body. Exactly one of Q (ids or
// labels, comma-separated, as with -q) and Queries (node ids) must be
// set; K and Budget override the engine's configuration per request
// without mutating it.
type queryRequest struct {
	Q       string `json:"q,omitempty"`
	Queries []int  `json:"queries,omitempty"`
	K       *int   `json:"k,omitempty"`
	Budget  *int   `json:"budget,omitempty"`
	Explain bool   `json:"explain,omitempty"`
}

// decodeQueryRequest parses a POST /query body against the graph and the
// engine's base config. It is a pure function over its inputs so
// FuzzQueryRequest can drive it with arbitrary bodies; every failure is a
// client error (HTTP 400), never a panic.
func decodeQueryRequest(g *ceps.Graph, cfg ceps.Config, body []byte) (queries []int, reqCfg ceps.Config, explain bool, err error) {
	reqCfg = cfg
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req queryRequest
	if err := dec.Decode(&req); err != nil {
		return nil, reqCfg, false, fmt.Errorf("bad request body: %w", err)
	}
	if dec.More() {
		return nil, reqCfg, false, fmt.Errorf("bad request body: trailing data after JSON object")
	}
	switch {
	case req.Q != "" && len(req.Queries) > 0:
		return nil, reqCfg, false, fmt.Errorf(`bad request body: set "q" or "queries", not both`)
	case len(req.Queries) > 0:
		for _, id := range req.Queries {
			if id < 0 || id >= g.N() {
				return nil, reqCfg, false, fmt.Errorf("query id %d out of range [0,%d)", id, g.N())
			}
		}
		queries = req.Queries
	default:
		queries, err = parseQueries(g, req.Q)
		if err != nil {
			return nil, reqCfg, false, err
		}
	}
	if req.K != nil {
		reqCfg.K = *req.K
	}
	if req.Budget != nil {
		reqCfg.Budget = *req.Budget
	}
	return queries, reqCfg, req.Explain, nil
}

// parseQueryParams resolves the GET /query URL parameters (q, k, budget,
// explain) against the graph and the engine's base config.
func parseQueryParams(g *ceps.Graph, cfg ceps.Config, q map[string][]string) (queries []int, reqCfg ceps.Config, explain bool, err error) {
	reqCfg = cfg
	get := func(key string) string {
		if vs := q[key]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	queries, err = parseQueries(g, get("q"))
	if err != nil {
		return nil, reqCfg, false, err
	}
	if v := get("k"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil {
			return nil, reqCfg, false, fmt.Errorf("bad k %q: %w", v, err)
		}
		reqCfg.K = k
	}
	if v := get("budget"); v != "" {
		b, err := strconv.Atoi(v)
		if err != nil {
			return nil, reqCfg, false, fmt.Errorf("bad budget %q: %w", v, err)
		}
		reqCfg.Budget = b
	}
	return queries, reqCfg, get("explain") != "", nil
}

// traceHandler is an HTTP handler that runs inside an already-opened
// request trace. The withTrace wrapper has stamped X-Ceps-Trace-Id on
// the response headers before the handler body runs.
type traceHandler func(ctx context.Context, span *ceps.Span, w http.ResponseWriter, r *http.Request)

// withTrace opens the request's root span before anything else touches
// the request — before the body is read, before decoding, before
// admission — so every response carries X-Ceps-Trace-Id and is linkable
// to its retained trace. That explicitly includes decode failures (400,
// 405, 413) and engine sheds (429, 503), which previously raced past the
// header stamp.
func withTrace(eng *ceps.Engine, name string, h traceHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, span := eng.StartTrace(r.Context(), name)
		defer span.End()
		if id := span.TraceID(); id != "" {
			w.Header().Set("X-Ceps-Trace-Id", id)
		}
		h(ctx, span, w, r)
	}
}

// newQueryMux builds the public query API:
//
//	GET  /v1/query?sources=1,2[&k=N][&budget=N][&timeout_ms=N]...  JSON result
//	POST /v1/query {"sources":[1,2],"k":N,...}                     JSON result
//	POST /v1/batch {"queries":[{...},{...}]}                       JSON results
//	POST /v1/replace {"team":[...],"departing":[...],...}          JSON ranking
//	GET|POST /query                                                deprecated alias
//	GET  /healthz                                                  liveness
//
// The v1 endpoints speak the typed queryRequestV1 schema (see v1.go),
// which is also the CLI -queries-file format. The legacy /query routes
// keep their original request/response shape but answer with a
// Deprecation header pointing at the successor. Per-request overrides
// never mutate the engine's configuration. The admin surface (metrics,
// pprof) deliberately lives on its own mux/port so the profiler is never
// exposed on the public address.
func newQueryMux(eng *ceps.Engine, g *ceps.Graph, cfg ceps.Config, queryTimeout time.Duration) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// Same version string as ceps_build_info and ceps -version, so a
		// rollout can be confirmed from the query port too. Probes grep
		// for the "ok" prefix.
		io.WriteString(w, "ok "+ceps.Version+"\n")
	})
	mux.HandleFunc("/v1/query", withTrace(eng, "http_query", handleQueryV1(eng, g, cfg, queryTimeout)))
	mux.HandleFunc("/v1/batch", withTrace(eng, "http_batch", handleBatchV1(eng, g, cfg, queryTimeout)))
	mux.HandleFunc("/v1/replace", withTrace(eng, "http_replace", handleReplaceV1(eng, g, queryTimeout)))
	mux.HandleFunc("/query", withTrace(eng, "http_query", handleQueryLegacy(eng, g, cfg, queryTimeout)))
	return mux
}

// handleQueryLegacy serves the pre-v1 /query contract unchanged, plus
// the RFC 8594-style deprecation headers steering clients to /v1/query.
// It runs through the same Do funnel as v1, which also fixes a long-
// standing gap: the legacy per-request budget override used to be
// accepted by the decoder and then silently dropped before the solve.
func handleQueryLegacy(eng *ceps.Engine, g *ceps.Graph, cfg ceps.Config, queryTimeout time.Duration) traceHandler {
	return func(ctx context.Context, span *ceps.Span, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</v1/query>; rel="successor-version"`)
		var (
			queries []int
			reqCfg  ceps.Config
			explain bool
			err     error
		)
		switch r.Method {
		case http.MethodGet:
			queries, reqCfg, explain, err = parseQueryParams(g, cfg, r.URL.Query())
		case http.MethodPost:
			var body []byte
			var status int
			body, status, err = readBody(w, r)
			if err != nil {
				writeQueryError(w, status, err)
				return
			}
			queries, reqCfg, explain, err = decodeQueryRequest(g, cfg, body)
		default:
			w.Header().Set("Allow", "GET, POST")
			writeQueryError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
			return
		}
		if err != nil {
			writeQueryError(w, http.StatusBadRequest, err)
			return
		}
		opts := []ceps.QueryOption{ceps.WithK(reqCfg.K)}
		if reqCfg.Budget > 0 {
			opts = append(opts, ceps.WithQueryBudget(reqCfg.Budget))
		}
		if queryTimeout > 0 {
			opts = append(opts, ceps.WithQueryTimeout(queryTimeout))
		}
		res, err := eng.Do(ctx, queries, opts...)
		if err != nil {
			span.SetError(err)
			writeQueryError(w, queryStatus(err), err)
			return
		}
		writeQueryResult(w, g, res, queries, reqCfg, explain)
	}
}

// queryStatus maps the library's error taxonomy onto HTTP statuses. The
// overload case is first: admission sheds wrap the deadline identities
// (so callers' errors.Is deadline checks still match), but over HTTP the
// actionable signal is "back off and retry", not "gateway timeout".
func queryStatus(err error) int {
	switch {
	case errors.Is(err, ceps.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ceps.ErrUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, ceps.ErrBadQuery) || errors.Is(err, ceps.ErrBadConfig):
		return http.StatusBadRequest
	case errors.Is(err, ceps.ErrDeadlineExceeded) || errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, ceps.ErrCanceled) || errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusInternalServerError
	}
}

// retryAfterSeconds renders an admission controller's retry hint as a
// Retry-After header value: whole seconds, rounded up, at least 1.
func retryAfterSeconds(err error) string {
	secs := int64(1)
	if hint, ok := ceps.RetryAfterHint(err); ok && hint > 0 {
		if s := int64(math.Ceil(hint.Seconds())); s > secs {
			secs = s
		}
	}
	return strconv.FormatInt(secs, 10)
}

func writeQueryError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", retryAfterSeconds(err))
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(queryError{Error: err.Error()})
}

// adminOptions assembles the admin mux options shared by serve mode and
// -admin: build info on /healthz, retained traces, live resilience state
// (admission queue, breaker) on /debug/vars when the engine has a
// resilience layer, and the flight-recorder endpoints (/debug/slo,
// /debug/flight, /debug/dashboard) when -flight-dir armed one.
func adminOptions(eng *ceps.Engine) []obs.AdminOption {
	opts := []obs.AdminOption{
		obs.WithTraceStore(eng.TraceStore()),
		obs.WithBuildInfo(ceps.Version),
	}
	if _, ok := eng.ResilienceStats(); ok {
		opts = append(opts, obs.WithDebugVar("resilience", func() any {
			st, _ := eng.ResilienceStats()
			return st
		}))
	}
	if fr := eng.FlightRecorder(); fr != nil {
		opts = append(opts, obs.WithFlightRecorder(fr))
	}
	return opts
}

// serveListeners runs the query API on queryLn and, when adminLn is
// non-nil, the admin surface (metrics, health, pprof) on adminLn, until
// ctx is canceled; then both servers drain gracefully for up to grace.
// It owns and closes the listeners.
func serveListeners(ctx context.Context, eng *ceps.Engine, g *ceps.Graph, cfg ceps.Config, queryTimeout, grace time.Duration, queryLn, adminLn net.Listener, stderr io.Writer) int {
	servers := []*http.Server{{
		Handler:           newQueryMux(eng, g, cfg, queryTimeout),
		ReadHeaderTimeout: 10 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}}
	listeners := []net.Listener{queryLn}
	fmt.Fprintf(stderr, "serving queries on http://%s/query\n", queryLn.Addr())
	if adminLn != nil {
		servers = append(servers, &http.Server{
			Handler:           obs.AdminMux(eng.Metrics(), adminOptions(eng)...),
			ReadHeaderTimeout: 10 * time.Second,
			MaxHeaderBytes:    1 << 20,
		})
		listeners = append(listeners, adminLn)
		fmt.Fprintf(stderr, "admin endpoint on http://%s/metrics\n", adminLn.Addr())
	}

	errc := make(chan error, len(servers))
	for i, srv := range servers {
		go func(srv *http.Server, ln net.Listener) {
			errc <- srv.Serve(ln)
		}(srv, listeners[i])
	}

	code := exitOK
	select {
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			code = exitDeadline
		} else {
			code = exitSignal
		}
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "ceps:", err)
			code = exitError
		}
	}
	shCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	for _, srv := range servers {
		srv.Shutdown(shCtx)
	}
	return code
}

// startAdmin starts the admin endpoint for a one-shot or batch run and
// returns its shutdown function. The endpoint exists so profiles and
// metrics can be pulled from a long single run (a big pre-partition, a
// wide batch) while it executes.
func startAdmin(addr string, eng *ceps.Engine, grace time.Duration, stderr io.Writer) (stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin endpoint: %w", err)
	}
	srv := &http.Server{
		Handler:           obs.AdminMux(eng.Metrics(), adminOptions(eng)...),
		ReadHeaderTimeout: 10 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	go srv.Serve(ln)
	fmt.Fprintf(stderr, "admin endpoint on http://%s/metrics\n", ln.Addr())
	return func() {
		shCtx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		srv.Shutdown(shCtx)
	}, nil
}
