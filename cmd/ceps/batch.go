package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ceps"
)

// maxQueryLine bounds one line of a batch file (8 MiB — far beyond any
// real query set, but finite so a malformed file cannot balloon memory).
const maxQueryLine = 8 << 20

// batchOptions carries the batch-mode flags from run into runBatch.
type batchOptions struct {
	perQueryTimeout time.Duration
	jsonOut         bool
	explain         bool
}

// jsonBatchItem is one element of the JSON array batch mode emits: the
// query set plus either its result or its error string.
type jsonBatchItem struct {
	Queries []int       `json:"queries"`
	Error   string      `json:"error,omitempty"`
	Result  *jsonResult `json:"result,omitempty"`
}

// readQuerySets parses a batch file: one comma-separated query set per
// line (ids or labels, as with -q); blank lines and lines starting with
// '#' are skipped. Trailing '#' comments on a query line are stripped.
func readQuerySets(g *ceps.Graph, path string) ([][]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var sets [][]int
	sc := bufio.NewScanner(f)
	// A query line enumerates a node set and can exceed bufio's 64 KiB
	// default token limit (a few thousand labeled members already do),
	// which would fail the whole batch with ErrTooLong.
	sc.Buffer(make([]byte, 64<<10), maxQueryLine)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		qs, err := parseQueries(g, line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		sets = append(sets, qs)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(sets) == 0 {
		return nil, fmt.Errorf("%s: no query sets", path)
	}
	return sets, nil
}

// runBatch answers every query set in the file concurrently through the
// engine's batch API and prints the answers in input order. Per-set
// failures are reported inline and turn the exit code into exitError;
// an expired outer deadline wins and maps to exitDeadline.
func runBatch(ctx context.Context, eng *ceps.Engine, g *ceps.Graph, sets [][]int, cfg ceps.Config, opts batchOptions, stdout, stderr io.Writer) int {
	items := eng.QueryBatchCtx(ctx, sets, ceps.BatchOptions{PerQueryTimeout: opts.perQueryTimeout})

	if st, ok := eng.CacheStats(); ok {
		fmt.Fprintf(stderr, "cache: %d hits, %d misses (%.0f%% hit rate), %d entries, %s/%s used\n",
			st.Hits, st.Misses, 100*st.HitRate(), st.Entries,
			formatBytes(st.BytesUsed), formatBytes(st.BytesBudget))
	}

	code := exitOK
	var jsonItems []jsonBatchItem
	for i, item := range items {
		if opts.jsonOut {
			ji := jsonBatchItem{Queries: item.Queries}
			if item.Err != nil {
				ji.Error = item.Err.Error()
			} else {
				jr := buildJSONResult(g, item.Result, item.Queries, cfg, opts.explain)
				ji.Result = &jr
			}
			jsonItems = append(jsonItems, ji)
		} else if item.Err != nil {
			fmt.Fprintf(stdout, "--- set %d %v: error: %v\n", i+1, item.Queries, item.Err)
		} else {
			res := item.Result
			fmt.Fprintf(stdout, "--- set %d %v: %d nodes, %d path edges, NRatio %.4f, %v\n",
				i+1, item.Queries, res.Subgraph.Size(), len(res.Subgraph.PathEdges),
				res.NRatio(), res.Elapsed)
			for _, u := range res.Subgraph.Nodes {
				fmt.Fprintf(stdout, "    %6d  %s\n", u, g.Label(u))
			}
		}
		if item.Err != nil {
			// The whole run hitting -timeout outranks per-set failures.
			if errors.Is(item.Err, ceps.ErrDeadlineExceeded) && ctx.Err() != nil {
				code = exitDeadline
			} else if code == exitOK {
				code = exitError
			}
		}
	}
	if opts.jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonItems); err != nil {
			fmt.Fprintln(stderr, "ceps:", err)
			return exitError
		}
	}
	return code
}

// formatBytes renders a byte count with a binary unit suffix.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
