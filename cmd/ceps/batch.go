package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ceps"
)

// maxQueryLine bounds one line of a batch file (8 MiB — far beyond any
// real query set, but finite so a malformed file cannot balloon memory).
const maxQueryLine = 8 << 20

// batchOptions carries the batch-mode flags from run into runBatch.
type batchOptions struct {
	perQueryTimeout time.Duration
	jsonOut         bool
	explain         bool
}

// readQueryRequests parses a batch file into v1 query requests. Two line
// forms mix freely:
//
//   - legacy: a comma-separated query set (ids or labels, as with -q);
//     '#' starts a comment, inline or whole-line
//   - v1: a JSON object in the /v1/query request schema, e.g.
//     {"sources":[0,2],"k":1,"timeout_ms":50} — no comment stripping, so
//     labels containing '#' survive
//
// Blank lines are skipped. Every line is validated against the graph up
// front so a typo fails fast with its line number instead of mid-batch.
func readQueryRequests(g *ceps.Graph, path string) ([]queryRequestV1, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var reqs []queryRequestV1
	sc := bufio.NewScanner(f)
	// A query line enumerates a node set and can exceed bufio's 64 KiB
	// default token limit (a few thousand labeled members already do),
	// which would fail the whole batch with ErrTooLong.
	sc.Buffer(make([]byte, 64<<10), maxQueryLine)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "{") {
			req, _, err := decodeQueryRequestV1(g, []byte(line))
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
			}
			reqs = append(reqs, req)
			continue
		}
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		qs, err := parseQueries(g, line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		reqs = append(reqs, queryRequestV1{Sources: qs})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("%s: no query sets", path)
	}
	return reqs, nil
}

// runBatch answers every request in the file concurrently through the
// same executor as POST /v1/batch and prints the answers in input order.
// Per-set failures are reported inline and turn the exit code into
// exitError; an expired outer deadline wins and maps to exitDeadline.
func runBatch(ctx context.Context, eng *ceps.Engine, g *ceps.Graph, reqs []queryRequestV1, cfg ceps.Config, opts batchOptions, stdout, stderr io.Writer) int {
	if opts.explain {
		for i := range reqs {
			reqs[i].Explain = true
		}
	}
	items := execBatchV1(ctx, eng, g, cfg, reqs, opts.perQueryTimeout)

	if st, ok := eng.CacheStats(); ok {
		fmt.Fprintf(stderr, "cache: %d hits, %d misses (%.0f%% hit rate), %d entries, %s/%s used\n",
			st.Hits, st.Misses, 100*st.HitRate(), st.Entries,
			formatBytes(st.BytesUsed), formatBytes(st.BytesBudget))
	}

	code := exitOK
	for i, item := range items {
		if !opts.jsonOut {
			if item.Error != "" {
				fmt.Fprintf(stdout, "--- set %d %v: error: %s\n", i+1, item.Queries, item.Error)
			} else {
				jr := item.Result
				fmt.Fprintf(stdout, "--- set %d %v: %d nodes, %d path edges, NRatio %.4f, %.3fms\n",
					i+1, item.Queries, len(jr.Nodes), len(jr.PathEdges), jr.NRatio, jr.ResponseMS)
				for _, n := range jr.Nodes {
					fmt.Fprintf(stdout, "    %6d  %s\n", n.ID, n.Label)
				}
			}
		}
		if item.err != nil {
			// The whole run hitting -timeout outranks per-set failures.
			if errors.Is(item.err, ceps.ErrDeadlineExceeded) && ctx.Err() != nil {
				code = exitDeadline
			} else if code == exitOK {
				code = exitError
			}
		}
	}
	if opts.jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(items); err != nil {
			fmt.Fprintln(stderr, "ceps:", err)
			return exitError
		}
	}
	return code
}

// formatBytes renders a byte count with a binary unit suffix.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
