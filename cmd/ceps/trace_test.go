package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"ceps"
	"ceps/internal/obs"
)

// smokeDataset builds a graph big enough for fast mode to carve real
// partitions (the 3-node testGraph is too small for a 4-span waterfall).
func smokeDataset(t *testing.T) *ceps.Dataset {
	t.Helper()
	cfg := ceps.ScaleDBLP(ceps.DefaultDBLPConfig(), 0.1)
	cfg.Seed = 42
	ds, err := ceps.GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestTraceSmoke is the end-to-end acceptance check for tracing: serve a
// fast-mode engine with -trace-sample 1.0 semantics, answer one query over
// HTTP, follow its X-Ceps-Trace-Id to /debug/traces, and assert the span
// tree has the four pipeline children with consistent sweep events.
func TestTraceSmoke(t *testing.T) {
	ds := smokeDataset(t)
	cfg := ceps.DefaultConfig()
	cfg.RWR.Iterations = 25
	cfg.Budget = 10
	eng := testEngine(t, ds.Graph, ceps.WithConfig(cfg),
		ceps.WithFastMode(6, ceps.PartitionOptions{Seed: 1}),
		ceps.WithTracing(ceps.TracingOptions{SampleRate: 1}))

	queryLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	adminLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var stderr bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- serveListeners(ctx, eng, ds.Graph, cfg, time.Minute, defaultShutdownGrace, queryLn, adminLn, &stderr)
	}()

	queryURL := fmt.Sprintf("http://%s/query?q=%d,%d",
		queryLn.Addr(), ds.Repository[0][0], ds.Repository[0][1])
	resp, err := http.Get(queryURL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d, body: %s", resp.StatusCode, body)
	}
	traceID := resp.Header.Get("X-Ceps-Trace-Id")
	if traceID == "" {
		t.Fatal("response carries no X-Ceps-Trace-Id header")
	}

	admin := "http://" + adminLn.Addr().String()
	resp, err = http.Get(admin + "/debug/traces?id=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/debug/traces Content-Type = %q", ct)
	}
	var tr obs.Trace
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tr.TraceID != traceID {
		t.Fatalf("fetched trace %q, asked for %q", tr.TraceID, traceID)
	}

	spans := map[string]obs.SpanData{}
	for _, s := range tr.Spans {
		spans[s.Name] = s
	}
	for _, want := range []string{"http_query", "query", "partition", "solve", "combine", "extract"} {
		if _, ok := spans[want]; !ok {
			t.Errorf("trace missing %s span (have %v)", want, spanNames(tr))
		}
	}
	if root := spans["http_query"]; root.ParentID != 0 {
		t.Errorf("http_query is not the root span")
	}
	if q := spans["query"]; q.ParentID != spans["http_query"].SpanID {
		t.Errorf("query span is not a child of http_query")
	}

	// Attribute values arrive as JSON numbers (float64); the sum of the
	// sweep events' advanced counts must equal the solve span's sweeps.
	solve := spans["solve"]
	wantSweeps, _ := solve.Attrs["sweeps"].(float64)
	if wantSweeps <= 0 {
		t.Fatalf("solve span has no sweeps attr: %v", solve.Attrs)
	}
	advanced := 0.0
	for _, ev := range solve.Events {
		if ev.Name != "sweep" {
			continue
		}
		n, ok := ev.Attrs["advanced"].(float64)
		if !ok {
			t.Fatalf("sweep event without advanced attr: %v", ev.Attrs)
		}
		advanced += n
	}
	if advanced != wantSweeps {
		t.Errorf("sweep events advanced %v columns, solve span says %v sweeps", advanced, wantSweeps)
	}

	resp, err = http.Get(admin + "/debug/traces/view?id=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(page), traceID) {
		t.Errorf("waterfall view status %d, mentions trace: %v", resp.StatusCode, strings.Contains(string(page), traceID))
	}

	resp, err = http.Get(admin + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if _, _, err := obs.ValidateExposition(bytes.NewReader(metrics)); err != nil {
		t.Fatalf("malformed exposition: %v", err)
	}
	for _, series := range []string{"ceps_traces_sampled_total 1", "ceps_traces_dropped_total", "go_goroutines"} {
		if !strings.Contains(string(metrics), series) {
			t.Errorf("metrics missing %s", series)
		}
	}

	cancel()
	select {
	case code := <-done:
		if code != exitSignal {
			t.Errorf("serve exit = %d, want %d", code, exitSignal)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down")
	}
}

func spanNames(tr obs.Trace) []string {
	names := make([]string, 0, len(tr.Spans))
	for _, s := range tr.Spans {
		names = append(names, s.Name)
	}
	return names
}

// TestTraceFlagValidation pins the usage errors for the tracing flags.
func TestTraceFlagValidation(t *testing.T) {
	graph := writeGraphFile(t)
	for _, args := range [][]string{
		{"-graph", graph, "-q", "Alice", "-trace-sample", "1.5"},
		{"-graph", graph, "-q", "Alice", "-trace-sample", "-0.1"},
		{"-graph", graph, "-q", "Alice", "-trace-buffer", "-4"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != exitUsage {
			t.Errorf("run(%v) = %d, want %d (stderr: %s)", args, code, exitUsage, errb.String())
		}
	}
	// A valid rate runs the one-shot query with tracing enabled.
	var out, errb bytes.Buffer
	if code := run([]string{"-graph", graph, "-q", "Alice,Carol", "-trace-sample", "1", "-b", "2"}, &out, &errb); code != exitOK {
		t.Fatalf("traced one-shot query exit = %d, stderr: %s", code, errb.String())
	}
}
