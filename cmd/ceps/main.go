// Command ceps answers center-piece subgraph queries over a graph file.
//
// Usage:
//
//	ceps -graph g.txt -q "Alice,Bob,Carol" [flags]
//
// Query nodes may be given as node ids or labels (mixed). The result is
// printed as a readable listing and, with -dot, as Graphviz DOT.
//
// Flags mirror the paper's parameters: -k for the K_softAND coefficient
// (0 = AND, 1 = OR), -b for the budget, -c and -m for the random walk,
// -alpha and -norm for the normalization, and -partitions to enable Fast
// CePS (pre-partition, then answer on the query partitions).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"ceps"
	"ceps/internal/rwr"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "path to a ceps-graph text file (required)")
		queryList = flag.String("q", "", "comma-separated query nodes: ids or labels (required)")
		k         = flag.Int("k", 0, "K_softAND coefficient: 0 = AND, 1 = OR, else k-out-of-Q")
		autoK     = flag.Bool("auto-k", false, "infer the K_softAND coefficient from the query set (overrides -k)")
		budget    = flag.Int("b", 20, "budget: max non-query nodes in the subgraph")
		c         = flag.Float64("c", 0.5, "random-walk continuation coefficient")
		m         = flag.Int("m", 50, "random-walk iterations")
		alpha     = flag.Float64("alpha", 0.5, "degree-penalization strength")
		norm      = flag.String("norm", "penalized", "normalization: column | penalized | symmetric")
		parts     = flag.Int("partitions", 0, "enable Fast CePS with this many pre-partitions (0 = off)")
		dot       = flag.Bool("dot", false, "emit Graphviz DOT instead of a listing")
		jsonFmt   = flag.Bool("json", false, "emit the result as JSON instead of a listing")
		explain   = flag.Bool("explain", false, "print the key path that justified each node")
	)
	flag.Parse()
	if *graphPath == "" || *queryList == "" {
		flag.Usage()
		os.Exit(2)
	}

	g, err := ceps.ReadGraphFile(*graphPath)
	if err != nil {
		fatal(err)
	}
	queries, err := parseQueries(g, *queryList)
	if err != nil {
		fatal(err)
	}

	cfg := ceps.DefaultConfig()
	cfg.K = *k
	cfg.Budget = *budget
	cfg.RWR.C = *c
	cfg.RWR.Iterations = *m
	cfg.RWR.Alpha = *alpha
	switch *norm {
	case "column":
		cfg.RWR.Norm = rwr.NormColumn
	case "penalized":
		cfg.RWR.Norm = rwr.NormDegreePenalized
	case "symmetric":
		cfg.RWR.Norm = rwr.NormSymmetric
	default:
		fatal(fmt.Errorf("unknown normalization %q", *norm))
	}

	if *autoK {
		inferred, supports, err := ceps.InferK(g, queries, cfg, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "inferred k = %d (query support counts %v)\n", inferred, supports)
		cfg.K = inferred
	}

	eng := ceps.NewEngine(g, cfg)
	if *parts > 0 {
		pt, err := eng.EnableFastMode(*parts, ceps.PartitionOptions{Seed: 1})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pre-partitioned into %d parts in %v\n", *parts, pt.PartitionTime)
	}
	res, err := eng.Query(queries...)
	if err != nil {
		fatal(err)
	}

	if *dot {
		if err := res.Subgraph.WriteDOT(os.Stdout, g, cepsDotOptions(queries)); err != nil {
			fatal(err)
		}
		return
	}
	if *jsonFmt {
		if err := writeJSON(os.Stdout, g, res, queries, cfg, *explain); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("query type: %s, budget %d, response time %v\n",
		cfg.QueryTypeName(len(queries)), *budget, res.Elapsed)
	fmt.Printf("subgraph: %d nodes, %d path edges, %d induced edges\n",
		res.Subgraph.Size(), len(res.Subgraph.PathEdges), len(res.Subgraph.InducedEdges))
	fmt.Printf("NRatio: %.4f", res.NRatio())
	if er, err := res.ERatio(); err == nil {
		fmt.Printf("  ERatio: %.4f", er)
	}
	fmt.Println()

	// List nodes by descending combined score.
	type row struct {
		id    int
		score float64
	}
	rows := make([]row, 0, res.Subgraph.Size())
	isQuery := make(map[int]bool, len(queries))
	for _, q := range queries {
		isQuery[q] = true
	}
	for _, u := range res.Subgraph.Nodes {
		// Combined scores live in working-graph space; map via ToOrig.
		w := u
		if res.ToOrig != nil {
			w = sort.SearchInts(res.ToOrig, u)
		}
		rows = append(rows, row{id: u, score: res.Combined[w]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].score > rows[j].score })
	for _, r := range rows {
		tag := " "
		if isQuery[r.id] {
			tag = "Q"
		}
		fmt.Printf("  %s %6d  %-40s r(Q,j)=%.3e\n", tag, r.id, g.Label(r.id), r.score)
	}

	if *explain {
		fmt.Println("\nwhy each node is here:")
		for _, line := range res.ExplainAll() {
			fmt.Printf("  %s\n", line)
		}
	}
}

func cepsDotOptions(queries []int) ceps.DOTOptions {
	return ceps.DOTOptions{Highlight: queries, IncludeInduced: true, Name: "ceps"}
}

// parseQueries resolves comma-separated ids or labels to node ids.
func parseQueries(g *ceps.Graph, list string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(list, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if id, err := strconv.Atoi(tok); err == nil {
			if id < 0 || id >= g.N() {
				return nil, fmt.Errorf("query id %d out of range [0,%d)", id, g.N())
			}
			out = append(out, id)
			continue
		}
		id, ok := g.NodeByLabel(tok)
		if !ok {
			return nil, fmt.Errorf("no node labeled %q", tok)
		}
		out = append(out, id)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no query nodes given")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ceps:", err)
	os.Exit(1)
}
