// Command ceps answers center-piece subgraph queries over a graph file.
//
// Usage:
//
//	ceps -graph g.txt -q "Alice,Bob,Carol" [flags]
//
// Query nodes may be given as node ids or labels (mixed). The result is
// printed as a readable listing and, with -dot, as Graphviz DOT.
//
// Flags mirror the paper's parameters: -k for the K_softAND coefficient
// (0 = AND, 1 = OR), -b for the budget, -c and -m for the random walk,
// -alpha and -norm for the normalization, and -partitions to enable Fast
// CePS (pre-partition, then answer on the query partitions).
//
// Batch mode: -queries-file FILE answers many query sets concurrently.
// Each line is either a comma-separated set ('#' starts a comment) or a
// JSON object in the /v1/query request schema (per-line k, budget,
// timeout_ms, no_degrade, coalesce overrides). Sets share the engine's
// score cache (-cache-mb, default 64 MiB) and solve pool (-workers), so
// overlapping sets pay each member's random walk once; cache statistics
// are printed to stderr. -query-timeout arms a deadline on each set
// individually; a set that fails or times out is reported inline without
// aborting the rest. With -json the batch is emitted as a JSON array in
// input order.
//
// Serve mode: -serve ADDR runs a long-lived HTTP query service instead
// of answering one query or batch: GET/POST /v1/query answers one typed
// request, POST /v1/batch an array of them, and the pre-v1 /query
// contract survives as a deprecated alias (it answers with a Deprecation
// header). -resilience adds admission control, load shedding (HTTP 429 +
// Retry-After), and a circuit breaker that serves relaxed-tolerance
// degraded answers (or fails fast with 503 under -no-degrade);
// -max-inflight and -max-queue size it. See README.md "Resilience".
// -coalesce merges concurrent cache-miss solves into blocked panels
// (one multi-source solve instead of Q scalar ones) at the price of up
// to ~1ms of added latency per miss; answers are bit-identical.
// -artifacts DIR mmaps a cepspre-built precompute directory so cold
// queries over precomputed partition unions are answered by one row read
// instead of a power iteration (see the cepspre command).
// -admin ADDR additionally exposes the operational surface — Prometheus
// /metrics, /healthz, /debug/vars, and net/http/pprof — on its own
// address in every mode, so a long batch can be profiled while it runs.
// -slow-log D writes a JSON line to stderr for every query at least D
// slow; see README.md "Observability".
//
// Tracing: -trace-sample P (0 < P ≤ 1) records request-scoped span traces
// for that fraction of queries (failed queries are always kept), retaining
// the newest -trace-buffer traces for the admin endpoint's /debug/traces
// and /debug/traces/view pages. In serve mode every HTTP response — even
// a 400 or a 429 shed — carries an X-Ceps-Trace-Id header, so a slow or
// failed client request can be looked up with /debug/traces?id=<that id>.
//
// Execution is context-aware: -timeout bounds the whole run (graph load,
// optional pre-partition, and the query), and SIGINT/SIGTERM cancel the
// in-flight query at its next iteration boundary. Exit codes are distinct
// so scripts can tell failures apart:
//
//	0  success
//	1  query or I/O error
//	2  usage error
//	3  the -timeout deadline expired
//	4  canceled by SIGINT/SIGTERM
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"ceps"
	"ceps/internal/rwr"
)

// Exit codes; see the package comment.
const (
	exitOK       = 0
	exitError    = 1
	exitUsage    = 2
	exitDeadline = 3
	exitSignal   = 4
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command against argv and returns the process exit code.
// It installs the signal handler and the -timeout deadline around the
// whole pipeline, so a stuck partitioner or query is interruptible.
func run(argv []string, stdout, stderr io.Writer) int {
	// Verb dispatch: `ceps replace ...` answers a subteam-replacement
	// query (see replace.go), `ceps diag ...` pulls a diagnostic bundle
	// from a live server's admin endpoint (see diag.go); everything else
	// is the classic flag-driven center-piece query surface.
	if len(argv) > 0 && argv[0] == "replace" {
		return runReplace(argv[1:], stdout, stderr)
	}
	if len(argv) > 0 && argv[0] == "diag" {
		return runDiag(argv[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("ceps", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphPath = fs.String("graph", "", "path to a ceps-graph text file (required)")
		queryList = fs.String("q", "", "comma-separated query nodes: ids or labels (required)")
		k         = fs.Int("k", 0, "K_softAND coefficient: 0 = AND, 1 = OR, else k-out-of-Q")
		autoK     = fs.Bool("auto-k", false, "infer the K_softAND coefficient from the query set (overrides -k)")
		budget    = fs.Int("b", 20, "budget: max non-query nodes in the subgraph")
		c         = fs.Float64("c", 0.5, "random-walk continuation coefficient")
		m         = fs.Int("m", 50, "random-walk iterations")
		alpha     = fs.Float64("alpha", 0.5, "degree-penalization strength")
		norm      = fs.String("norm", "penalized", "normalization: column | penalized | symmetric")
		parts     = fs.Int("partitions", 0, "enable Fast CePS with this many pre-partitions (0 = off)")
		timeout   = fs.Duration("timeout", 0, "abort the whole run after this long (0 = no limit)")
		dot       = fs.Bool("dot", false, "emit Graphviz DOT instead of a listing")
		jsonFmt   = fs.Bool("json", false, "emit the result as JSON instead of a listing")
		explain   = fs.Bool("explain", false, "print the key path that justified each node")

		queriesFile  = fs.String("queries-file", "", "answer a batch: one query set per line, comma-separated or a /v1/query JSON object (# starts a comment); mutually exclusive with -q")
		queryTimeout = fs.Duration("query-timeout", 0, "per-query-set deadline in batch mode, per-request deadline in serve mode (0 = none)")
		cacheMB      = fs.Int("cache-mb", 64, "score-cache budget in MiB, shared across the batch (0 = disable caching)")
		workers      = fs.Int("workers", 0, "max concurrent random-walk solves (0 = GOMAXPROCS)")
		coalesce     = fs.Bool("coalesce", false, "merge concurrent cache-miss solves into blocked multi-source panels (requires caching)")
		artifactsDir = fs.String("artifacts", "", "mmap a cepspre-built artifact directory: cold queries over precomputed partition unions become one row read (fingerprints must match this run's graph, RWR flags, -partitions and its seed)")

		serveAddr     = fs.String("serve", "", "run as a long-lived query service on this address (e.g. :8080) instead of answering -q/-queries-file")
		adminAddr     = fs.String("admin", "", "serve /metrics, /healthz, /debug/vars, pprof and /debug/traces on this address (e.g. :6060)")
		slowLog       = fs.Duration("slow-log", 0, "log queries at least this slow to stderr as JSON lines (0 = off)")
		shutdownGrace = fs.Duration("shutdown-grace", defaultShutdownGrace, "how long in-flight HTTP requests may drain after a shutdown signal")

		resilient   = fs.Bool("resilience", false, "enable the serving resilience layer: admission control, load shedding, and a circuit breaker with degraded answers")
		maxInflight = fs.Int("max-inflight", 0, "resilience: max concurrently admitted queries (0 = 2x workers)")
		maxQueue    = fs.Int("max-queue", 0, "resilience: admission queue depth (0 = 4x max-inflight, negative = shed instead of queueing)")
		noDegrade   = fs.Bool("no-degrade", false, "resilience: fail fast instead of serving relaxed-tolerance answers when the circuit breaker is open")

		traceSample = fs.Float64("trace-sample", 0, "record span traces for this fraction of queries, 0..1 (0 = tracing off)")
		traceBuffer = fs.Int("trace-buffer", 0, "how many sampled traces to retain for /debug/traces (0 = default 256)")

		flightDir   = fs.String("flight-dir", "", "arm the flight recorder: SLO tracking plus anomaly-triggered diagnostic bundles written under this directory (served on -admin's /debug/slo, /debug/flight, /debug/dashboard)")
		showVersion = fs.Bool("version", false, "print the ceps version and exit")
	)
	if err := fs.Parse(argv); err != nil {
		return exitUsage
	}
	if *showVersion {
		// The same string /healthz and ceps_build_info report.
		fmt.Fprintf(stdout, "ceps %s %s\n", ceps.Version, runtime.Version())
		return exitOK
	}
	if *graphPath == "" {
		fs.Usage()
		return exitUsage
	}
	if *serveAddr == "" && (*queryList == "") == (*queriesFile == "") {
		fs.Usage()
		return exitUsage
	}
	if *serveAddr != "" && (*queryList != "" || *queriesFile != "" || *autoK) {
		fmt.Fprintln(stderr, "ceps: -serve answers queries over HTTP; it is exclusive with -q, -queries-file and -auto-k")
		return exitUsage
	}
	if *cacheMB < 0 || *workers < 0 {
		fmt.Fprintln(stderr, "ceps: -cache-mb and -workers must be non-negative")
		return exitUsage
	}
	if *coalesce && *cacheMB == 0 {
		fmt.Fprintln(stderr, "ceps: -coalesce requires caching; raise -cache-mb")
		return exitUsage
	}
	if *parts < 0 {
		fmt.Fprintf(stderr, "ceps: -partitions %d must be non-negative\n", *parts)
		return exitUsage
	}
	if *slowLog < 0 {
		fmt.Fprintf(stderr, "ceps: -slow-log %v must be non-negative\n", *slowLog)
		return exitUsage
	}
	if *shutdownGrace <= 0 {
		fmt.Fprintf(stderr, "ceps: -shutdown-grace %v must be positive\n", *shutdownGrace)
		return exitUsage
	}
	if !*resilient && (*maxInflight != 0 || *maxQueue != 0 || *noDegrade) {
		fmt.Fprintln(stderr, "ceps: -max-inflight, -max-queue and -no-degrade require -resilience")
		return exitUsage
	}
	if *maxInflight < 0 {
		fmt.Fprintf(stderr, "ceps: -max-inflight %d must be non-negative\n", *maxInflight)
		return exitUsage
	}
	if *traceSample < 0 || *traceSample > 1 {
		fmt.Fprintf(stderr, "ceps: -trace-sample %g must be in [0, 1]\n", *traceSample)
		return exitUsage
	}
	if *traceBuffer < 0 {
		fmt.Fprintf(stderr, "ceps: -trace-buffer %d must be non-negative\n", *traceBuffer)
		return exitUsage
	}

	// SIGINT/SIGTERM cancel ctx; -timeout arms a deadline on top. Every
	// phase below (InferK, pre-partition, the query itself) checks this
	// context at its iteration boundaries.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	fail := func(err error) int { return failWith(err, stderr) }

	g, err := ceps.ReadGraphFile(*graphPath)
	if err != nil {
		return fail(err)
	}

	cfg := ceps.DefaultConfig()
	cfg.K = *k
	cfg.Budget = *budget
	cfg.RWR.C = *c
	cfg.RWR.Iterations = *m
	cfg.RWR.Alpha = *alpha
	switch *norm {
	case "column":
		cfg.RWR.Norm = rwr.NormColumn
	case "penalized":
		cfg.RWR.Norm = rwr.NormDegreePenalized
	case "symmetric":
		cfg.RWR.Norm = rwr.NormSymmetric
	default:
		fmt.Fprintf(stderr, "ceps: unknown normalization %q\n", *norm)
		return exitUsage
	}

	opts := []ceps.Option{ceps.WithConfig(cfg)}
	if *cacheMB > 0 {
		opts = append(opts, ceps.WithCache(int64(*cacheMB)<<20))
	}
	if *workers > 0 {
		opts = append(opts, ceps.WithWorkers(*workers))
	}
	if *coalesce {
		opts = append(opts, ceps.WithCoalescing(ceps.CoalesceOptions{}))
	}
	if *artifactsDir != "" {
		opts = append(opts, ceps.WithArtifactDir(*artifactsDir))
	}
	if *slowLog > 0 {
		opts = append(opts, ceps.WithSlowQueryLog(stderr, *slowLog))
	}
	if *traceSample > 0 {
		opts = append(opts, ceps.WithTracing(ceps.TracingOptions{
			SampleRate: *traceSample,
			Buffer:     *traceBuffer,
		}))
	}
	if *resilient {
		opts = append(opts, ceps.WithResilience(ceps.ResilienceOptions{
			MaxConcurrent: *maxInflight,
			MaxQueue:      *maxQueue,
			NoDegrade:     *noDegrade,
		}))
	}
	if *flightDir != "" {
		opts = append(opts, ceps.WithFlightRecorder(ceps.FlightRecorderOptions{Dir: *flightDir}))
	}
	eng, err := ceps.NewEngine(g, opts...)
	if err != nil {
		return fail(err)
	}
	if *parts > 0 {
		pt, err := eng.EnableFastModeCtx(ctx, *parts, ceps.PartitionOptions{Seed: 1})
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "pre-partitioned into %d parts in %v\n", *parts, pt.PartitionTime)
	}

	if *serveAddr != "" {
		queryLn, err := net.Listen("tcp", *serveAddr)
		if err != nil {
			return fail(err)
		}
		var adminLn net.Listener
		if *adminAddr != "" {
			adminLn, err = net.Listen("tcp", *adminAddr)
			if err != nil {
				queryLn.Close()
				return fail(err)
			}
		}
		return serveListeners(ctx, eng, g, cfg, *queryTimeout, *shutdownGrace, queryLn, adminLn, stderr)
	}
	if *adminAddr != "" {
		stopAdmin, err := startAdmin(*adminAddr, eng, *shutdownGrace, stderr)
		if err != nil {
			return fail(err)
		}
		defer stopAdmin()
	}

	if *queriesFile != "" {
		if *autoK {
			fmt.Fprintln(stderr, "ceps: -auto-k is not supported in batch mode")
			return exitUsage
		}
		reqs, err := readQueryRequests(g, *queriesFile)
		if err != nil {
			return fail(err)
		}
		return runBatch(ctx, eng, g, reqs, cfg, batchOptions{
			perQueryTimeout: *queryTimeout,
			jsonOut:         *jsonFmt,
			explain:         *explain,
		}, stdout, stderr)
	}

	queries, err := parseQueries(g, *queryList)
	if err != nil {
		return fail(err)
	}
	if *autoK {
		inferred, supports, err := eng.InferKCtx(ctx, queries, 0)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "inferred k = %d (query support counts %v)\n", inferred, supports)
		cfg.K = inferred
		if err := eng.Reconfigure(cfg); err != nil {
			return fail(err)
		}
	}
	res, err := eng.Do(ctx, queries)
	if err != nil {
		return fail(err)
	}
	if res.Fallback != nil {
		fmt.Fprintf(stderr, "warning: degraded: %s\n", res.Fallback)
	}

	if *dot {
		if err := res.Subgraph.WriteDOT(stdout, g, cepsDotOptions(queries)); err != nil {
			return fail(err)
		}
		return exitOK
	}
	if *jsonFmt {
		if err := writeJSON(stdout, g, res, queries, cfg, *explain); err != nil {
			return fail(err)
		}
		return exitOK
	}

	fmt.Fprintf(stdout, "query type: %s, budget %d, response time %v\n",
		cfg.QueryTypeName(len(queries)), *budget, res.Elapsed)
	fmt.Fprintf(stdout, "subgraph: %d nodes, %d path edges, %d induced edges\n",
		res.Subgraph.Size(), len(res.Subgraph.PathEdges), len(res.Subgraph.InducedEdges))
	fmt.Fprintf(stdout, "NRatio: %.4f", res.NRatio())
	if er, err := res.ERatio(); err == nil {
		fmt.Fprintf(stdout, "  ERatio: %.4f", er)
	}
	fmt.Fprintln(stdout)

	// List nodes by descending combined score.
	type row struct {
		id    int
		score float64
	}
	rows := make([]row, 0, res.Subgraph.Size())
	isQuery := make(map[int]bool, len(queries))
	for _, q := range queries {
		isQuery[q] = true
	}
	for _, u := range res.Subgraph.Nodes {
		// Combined scores live in working-graph space; map via ToOrig.
		w := u
		if res.ToOrig != nil {
			w = sort.SearchInts(res.ToOrig, u)
		}
		rows = append(rows, row{id: u, score: res.Combined[w]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].score > rows[j].score })
	for _, r := range rows {
		tag := " "
		if isQuery[r.id] {
			tag = "Q"
		}
		fmt.Fprintf(stdout, "  %s %6d  %-40s r(Q,j)=%.3e\n", tag, r.id, g.Label(r.id), r.score)
	}

	if *explain {
		fmt.Fprintln(stdout, "\nwhy each node is here:")
		for _, line := range res.ExplainAll() {
			fmt.Fprintf(stdout, "  %s\n", line)
		}
	}
	return exitOK
}

// failWith prints an error and classifies it into the exit-code scheme
// shared by every verb.
func failWith(err error, stderr io.Writer) int {
	// Library errors already carry the "ceps:" prefix; don't stutter.
	msg := err.Error()
	if !strings.HasPrefix(msg, "ceps:") {
		msg = "ceps: " + msg
	}
	fmt.Fprintln(stderr, msg)
	switch {
	case errors.Is(err, ceps.ErrDeadlineExceeded) || errors.Is(err, context.DeadlineExceeded):
		return exitDeadline
	case errors.Is(err, ceps.ErrCanceled) || errors.Is(err, context.Canceled):
		return exitSignal
	default:
		return exitError
	}
}

func cepsDotOptions(queries []int) ceps.DOTOptions {
	return ceps.DOTOptions{Highlight: queries, IncludeInduced: true, Name: "ceps"}
}

// parseQueries resolves comma-separated ids or labels to node ids.
func parseQueries(g *ceps.Graph, list string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(list, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if id, err := strconv.Atoi(tok); err == nil {
			if id < 0 || id >= g.N() {
				return nil, fmt.Errorf("query id %d out of range [0,%d)", id, g.N())
			}
			out = append(out, id)
			continue
		}
		id, ok := g.NodeByLabel(tok)
		if !ok {
			return nil, fmt.Errorf("no node labeled %q", tok)
		}
		out = append(out, id)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no query nodes given")
	}
	return out, nil
}
