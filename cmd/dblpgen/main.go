// Command dblpgen generates a synthetic DBLP-style co-authorship graph and
// writes it in the ceps-graph text format, along with an optional query
// repository listing.
//
// Usage:
//
//	dblpgen -out graph.txt [-scale f] [-seed s] [-repo repo.txt]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"ceps/internal/dblp"
)

func main() {
	var (
		out   = flag.String("out", "dblp-graph.txt", "output path for the graph")
		repo  = flag.String("repo", "", "optional output path for the query repository listing")
		scale = flag.Float64("scale", 1.0, "dataset scale (1.0 ≈ 4K authors, 80 ≈ paper's 315K)")
		seed  = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	cfg := dblp.Scale(dblp.DefaultConfig(), *scale)
	cfg.Seed = *seed
	t0 := time.Now()
	ds, err := dblp.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("generated %d authors, %d edges, %d papers in %v\n",
		ds.Graph.N(), ds.Graph.M(), ds.PaperCount, time.Since(t0).Round(time.Millisecond))

	if err := ds.Graph.WriteFile(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("graph written to %s\n", *out)

	if *repo != "" {
		f, err := os.Create(*repo)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(f)
		for ci, members := range ds.Repository {
			fmt.Fprintf(w, "# community %d: %s\n", ci, ds.Communities[ci].Name)
			for _, a := range members {
				fmt.Fprintf(w, "%d\t%s\t%.0f\n", a, ds.Graph.Label(a), ds.Graph.WeightedDegree(a))
			}
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("query repository written to %s\n", *repo)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dblpgen:", err)
	os.Exit(1)
}
