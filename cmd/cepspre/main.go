// Command cepspre precomputes the serving artifacts an Engine mmaps with
// ceps.WithArtifactDir: per-partition (and optionally full-graph) solved
// score panels, content-keyed by graph, RWR-config and partition
// fingerprints so a mismatched engine cleanly ignores them.
//
// Usage:
//
//	cepspre -graph g.txt -out artifacts/ [-partitions 16] [flags]
//	cepspre -verify -out artifacts/
//
// Build mode factors each partition union offline: small unions get the
// dense pre-solved inverse (rows bit-identical to the engine's exact
// kernel), larger ones a panel of iteratively solved per-source vectors
// for the highest-weighted-degree sources that fit -budget (rows
// bit-identical to the engine's iterative kernel). The RWR flags (-c, -m,
// -alpha, -norm, -tol) and -partitions/-seed must match the serving
// engine's configuration, or the artifacts will not bind — fingerprints
// enforce this; the tool cannot check a config it never sees.
//
// Verify mode is an artifact fsck: it re-validates every indexed file
// (magic, version, shape, checksum) and flags stray artifact files the
// index does not list, without needing the graph.
//
// Exit codes: 0 success, 1 build/verify failure (including any verify
// issue), 2 usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"ceps"
	"ceps/internal/artifact"
	"ceps/internal/partition"
	"ceps/internal/rwr"
)

const (
	exitOK    = 0
	exitError = 1
	exitUsage = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command against argv and returns the process exit code.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cepspre", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphPath = fs.String("graph", "", "path to a ceps-graph text file (required unless -verify)")
		outDir    = fs.String("out", "", "artifact directory to write or verify (required)")
		parts     = fs.Int("partitions", 0, "partition the graph into this many parts and precompute each part's union (0 = full graph only)")
		seed      = fs.Int64("seed", 1, "partitioner seed; must match the serving engine's fast-mode seed")
		budgetMB  = fs.Int("budget", 64, "per-unit byte budget in MiB: unions whose dense inverse fits become dense artifacts, the rest get a top-source panel sized to fit")
		full      = fs.Bool("full", false, "also precompute the full-graph artifact when -partitions is set (it always is without)")
		workers   = fs.Int("workers", 0, "concurrent per-source solves and dense factorization columns (0 = GOMAXPROCS)")
		verify    = fs.Bool("verify", false, "verify an existing artifact directory instead of building")
		verbose   = fs.Bool("v", false, "log per-unit progress to stderr")

		c     = fs.Float64("c", 0.5, "random-walk continuation coefficient")
		m     = fs.Int("m", 50, "random-walk iterations")
		alpha = fs.Float64("alpha", 0.5, "degree-penalization strength")
		norm  = fs.String("norm", "penalized", "normalization: column | penalized | symmetric")
		tol   = fs.Float64("tol", 0, "early-stop tolerance (0 = fixed iterations, the paper's setting)")
	)
	if err := fs.Parse(argv); err != nil {
		return exitUsage
	}
	if *outDir == "" {
		fs.Usage()
		return exitUsage
	}

	if *verify {
		if *graphPath != "" {
			fmt.Fprintln(stderr, "cepspre: -verify validates -out on its own; -graph is not used")
			return exitUsage
		}
		checked, issues, err := artifact.Verify(*outDir)
		if err != nil {
			fmt.Fprintf(stderr, "cepspre: %v\n", err)
			return exitError
		}
		fmt.Fprintf(stdout, "verified %d artifacts in %s\n", checked, *outDir)
		for _, is := range issues {
			fmt.Fprintf(stdout, "  BAD %s: %s\n", is.File, is.Problem)
		}
		if len(issues) > 0 {
			fmt.Fprintf(stderr, "cepspre: %d of %d artifacts damaged\n", len(issues), checked)
			return exitError
		}
		return exitOK
	}

	if *graphPath == "" {
		fs.Usage()
		return exitUsage
	}
	if *parts < 0 || *budgetMB <= 0 || *workers < 0 {
		fmt.Fprintln(stderr, "cepspre: -partitions and -workers must be non-negative, -budget positive")
		return exitUsage
	}
	rc := rwr.Config{C: *c, Iterations: *m, Alpha: *alpha, Tol: *tol}
	switch *norm {
	case "column":
		rc.Norm = rwr.NormColumn
	case "penalized":
		rc.Norm = rwr.NormDegreePenalized
	case "symmetric":
		rc.Norm = rwr.NormSymmetric
	default:
		fmt.Fprintf(stderr, "cepspre: unknown normalization %q\n", *norm)
		return exitUsage
	}
	if err := rc.Validate(); err != nil {
		fmt.Fprintf(stderr, "cepspre: %v\n", err)
		return exitUsage
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	g, err := ceps.ReadGraphFile(*graphPath)
	if err != nil {
		fmt.Fprintf(stderr, "cepspre: %v\n", err)
		return exitError
	}

	bc := artifact.BuildConfig{
		RWR:         rc,
		IncludeFull: *full,
		ByteBudget:  int64(*budgetMB) << 20,
		Workers:     *workers,
	}
	if *verbose {
		bc.Log = func(format string, args ...any) {
			fmt.Fprintf(stderr, "cepspre: "+format+"\n", args...)
		}
	}
	if *parts > 0 {
		pt, err := partition.KWayCtx(ctx, g, *parts, partition.Options{Seed: *seed})
		if err != nil {
			fmt.Fprintf(stderr, "cepspre: partitioning: %v\n", err)
			return exitError
		}
		bc.Partition = pt
	}

	res, err := artifact.Build(ctx, g, bc, *outDir)
	if err != nil {
		fmt.Fprintf(stderr, "cepspre: %v\n", err)
		return exitError
	}

	fmt.Fprintf(stdout, "graph %s: %d nodes, fingerprint %016x, config %016x",
		*graphPath, g.N(), res.GraphFP, res.ConfigFP)
	if bc.Partition != nil {
		fmt.Fprintf(stdout, ", partition %016x (%d parts, seed %d)", res.PartitionFP, *parts, *seed)
	}
	fmt.Fprintln(stdout)
	for _, u := range res.Units {
		name := "full graph"
		if len(u.Parts) > 0 {
			name = fmt.Sprintf("part %v", u.Parts)
		}
		if u.Skipped {
			fmt.Fprintf(stdout, "  skip %-12s %6d nodes: %s\n", name, u.N, u.Reason)
			continue
		}
		fmt.Fprintf(stdout, "  %-5s %-12s %6d nodes, %6d sources, %10d bytes -> %s\n",
			u.Class, name, u.N, u.Sources, u.Bytes, u.File)
	}
	fmt.Fprintf(stdout, "wrote %d artifacts, %d bytes to %s\n", res.Written, res.Bytes, *outDir)
	return exitOK
}
