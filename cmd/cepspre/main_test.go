package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ceps"
)

// writeTestGraph writes a small two-community graph to a temp file and
// returns its path.
func writeTestGraph(t *testing.T) string {
	t.Helper()
	b := ceps.NewBuilder(0)
	for i := 0; i < 24; i++ {
		b.AddNode("")
	}
	// Two dense 12-node communities with one bridge.
	for c := 0; c < 2; c++ {
		base := c * 12
		for i := 0; i < 12; i++ {
			for j := i + 1; j < 12; j += 3 {
				b.AddEdge(base+i, base+j, 1)
			}
		}
	}
	b.AddEdge(5, 17, 0.5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBuildThenVerify(t *testing.T) {
	graphPath := writeTestGraph(t)
	out := filepath.Join(t.TempDir(), "artifacts")
	var stdout, stderr strings.Builder
	code := run([]string{"-graph", graphPath, "-out", out, "-partitions", "2", "-full", "-v"}, &stdout, &stderr)
	if code != exitOK {
		t.Fatalf("build exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "wrote 3 artifacts") {
		t.Fatalf("expected full + 2 part artifacts:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-verify", "-out", out}, &stdout, &stderr)
	if code != exitOK {
		t.Fatalf("verify exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "verified 3 artifacts") {
		t.Fatalf("verify output:\n%s", stdout.String())
	}
}

func TestVerifyFlagsCorruption(t *testing.T) {
	graphPath := writeTestGraph(t)
	out := filepath.Join(t.TempDir(), "artifacts")
	if code := run([]string{"-graph", graphPath, "-out", out}, &strings.Builder{}, &strings.Builder{}); code != exitOK {
		t.Fatalf("build exit %d", code)
	}
	ents, err := os.ReadDir(out)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := false
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".cpa" {
			continue
		}
		path := filepath.Join(out, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted = true
		break
	}
	if !corrupted {
		t.Fatal("no artifact file written")
	}
	var stdout, stderr strings.Builder
	if code := run([]string{"-verify", "-out", out}, &stdout, &stderr); code != exitError {
		t.Fatalf("verify of corrupt dir: exit %d\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "BAD") {
		t.Fatalf("verify should name the damaged file:\n%s", stdout.String())
	}
}

func TestBuiltArtifactsBindToEngine(t *testing.T) {
	graphPath := writeTestGraph(t)
	out := filepath.Join(t.TempDir(), "artifacts")
	if code := run([]string{"-graph", graphPath, "-out", out, "-partitions", "2"}, &strings.Builder{}, &strings.Builder{}); code != exitOK {
		t.Fatalf("build failed")
	}
	g, err := ceps.ReadGraphFile(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ceps.NewEngine(g,
		ceps.WithCache(4<<20),
		ceps.WithArtifactDir(out),
		ceps.WithFastMode(2, ceps.PartitionOptions{Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	st, ok := eng.ArtifactStats()
	if !ok || st.Loaded != 2 || st.Bound != 2 {
		t.Fatalf("stats = %+v, want 2 loaded and both part spaces bound", st)
	}
	res, err := eng.Query(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages.ArtifactHits != 2 || res.Stages.SolveKernel != "artifact" {
		t.Fatalf("stages = %+v, want both sources artifact-served", res.Stages)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-out", "x"},
		{"-graph", "g", "-out", "x", "-norm", "bogus"},
		{"-graph", "g", "-out", "x", "-partitions", "-1"},
		{"-verify", "-out", "x", "-graph", "g"},
	}
	for _, argv := range cases {
		if code := run(argv, &strings.Builder{}, &strings.Builder{}); code != exitUsage {
			t.Errorf("run(%v) = %d, want usage error", argv, code)
		}
	}
}
