package ceps_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"ceps/internal/experiments"
)

// TestCoalesceSmoke runs a shrunk version of the two-arm coalescing
// comparison (see internal/experiments/coalesce.go) and enforces the
// qualitative floors `make coalesce-smoke` gates on: concurrent misses
// actually merge (mean panel width > 1), the merged answers are
// bit-identical to the uncoalesced ones, and coalescing never costs
// throughput. When BENCH_COALESCE_OUT names a file the full result is
// written there as JSON (this is what `make bench-coalesce` runs, at
// bigger parameters via cmd/cepsbench).
func TestCoalesceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped with -short")
	}
	if raceDetectorEnabled {
		t.Skip("timing-sensitive; the race detector distorts the closed-loop " +
			"throughput comparison (make coalesce-smoke runs this without -race)")
	}
	s, err := experiments.NewSetup(0.2, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.Base.RWR.Iterations = 25
	r, err := experiments.Coalesce(s, 4, 32, 128, 4*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("coalesce smoke: off %.0f rows/sec p99 %.1fms, on %.0f rows/sec p99 %.1fms, mean width %.1f, speedup %.2fx",
		r.Off.RowsPerSec, r.Off.P99MS, r.On.RowsPerSec, r.On.P99MS, r.On.MeanWidth, r.SpeedupRows)

	if !r.BitIdentical {
		t.Error("coalesced answers diverged from uncoalesced ones")
	}
	if r.Off.Errored != 0 || r.On.Errored != 0 {
		t.Errorf("errors under closed-loop load: off %d, on %d", r.Off.Errored, r.On.Errored)
	}
	if r.On.MeanWidth <= 1 {
		t.Errorf("mean panel width %.2f, want > 1: concurrent misses never merged", r.On.MeanWidth)
	}
	// Qualitative floor only — the quantitative >= 1.5x headline is
	// enforced on the checked-in BENCH_coalesce.json, not per CI run.
	if r.On.RowsPerSec < r.Off.RowsPerSec {
		t.Errorf("coalescing lost throughput: on %.0f rows/sec < off %.0f",
			r.On.RowsPerSec, r.Off.RowsPerSec)
	}

	if out := os.Getenv("BENCH_COALESCE_OUT"); out != "" {
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
