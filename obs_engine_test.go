package ceps_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"ceps"
	"ceps/internal/obs"
)

// scrape renders the engine's registry and validates the exposition
// format, returning the text for substring assertions.
func scrape(t *testing.T, eng *ceps.Engine) string {
	t.Helper()
	var buf bytes.Buffer
	if err := eng.Metrics().WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if _, _, err := obs.ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("malformed exposition: %v\n%s", err, buf.String())
	}
	return buf.String()
}

func TestEngineStageTimingsAndMetrics(t *testing.T) {
	ds := smallDataset(t)
	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()), ceps.WithCache(8<<20), ceps.WithWorkers(2))
	queries := []int{ds.Repository[0][0], ds.Repository[1][0]}

	res, err := eng.Query(queries...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages.Solve <= 0 {
		t.Errorf("cold query Stages.Solve = %v, want > 0", res.Stages.Solve)
	}
	if res.Stages.Extract <= 0 {
		t.Errorf("Stages.Extract = %v, want > 0", res.Stages.Extract)
	}
	if res.Stages.Partition != 0 {
		t.Errorf("full-graph query Stages.Partition = %v, want 0", res.Stages.Partition)
	}
	if res.Stages.CacheMisses != len(queries) || res.Stages.CacheHits != 0 {
		t.Errorf("cold query cache stats = %d hits / %d misses, want 0/%d",
			res.Stages.CacheHits, res.Stages.CacheMisses, len(queries))
	}

	warm, err := eng.Query(queries...)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stages.CacheHits != len(queries) || warm.Stages.CacheMisses != 0 {
		t.Errorf("warm query cache stats = %d hits / %d misses, want %d/0",
			warm.Stages.CacheHits, warm.Stages.CacheMisses, len(queries))
	}

	// A bad query lands in the error-kind series without panicking. It runs
	// before fast mode so it is counted on the full path.
	if _, err := eng.Query(); err == nil {
		t.Fatal("empty query should fail")
	}

	if _, err := eng.EnableFastMode(4, ceps.PartitionOptions{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	fast, err := eng.Query(queries...)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Fallback == nil && fast.Stages.Partition <= 0 {
		t.Errorf("fast query Stages.Partition = %v, want > 0", fast.Stages.Partition)
	}

	text := scrape(t, eng)
	fastSeries := `ceps_queries_total{path="fast"} 1`
	if fast.Fallback != nil {
		fastSeries = `ceps_queries_total{path="fast_fallback"} 1`
	}
	for _, want := range []string{
		fastSeries,
		// 2 successful full-graph queries + the failed empty one (failures
		// are counted on the path that rejected them).
		`ceps_queries_total{path="full"} 3`,
		`ceps_query_errors_total{kind="bad_query"} 1`,
		`ceps_stage_duration_seconds_bucket{stage="solve",le="+Inf"}`,
		`ceps_query_duration_seconds_count 4`,
		`ceps_cache_hits_total`,
		`ceps_cache_bytes_budget 8.388608e+06`,
		`ceps_inflight_queries 0`,
		`ceps_workers 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}

func TestEngineSlowQueryLog(t *testing.T) {
	ds := smallDataset(t)
	var buf bytes.Buffer
	// Threshold 0 logs every query, making the test deterministic.
	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()), ceps.WithCache(8<<20),
		ceps.WithSlowQueryLog(&buf, 0))
	queries := []int{ds.Repository[0][0], ds.Repository[1][0]}

	if _, err := eng.Query(queries...); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(); err == nil {
		t.Fatal("empty query should fail")
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("slow log has %d lines, want 2:\n%s", len(lines), buf.String())
	}

	var ok ceps.SlowQueryEntry
	if err := json.Unmarshal([]byte(lines[0]), &ok); err != nil {
		t.Fatalf("slow log line is not JSON: %v\n%s", err, lines[0])
	}
	if ok.Path != "full" {
		t.Errorf("path = %q, want full", ok.Path)
	}
	if len(ok.Queries) != 2 || ok.Queries[0] != queries[0] {
		t.Errorf("queries = %v, want %v", ok.Queries, queries)
	}
	if ok.ElapsedMS <= 0 || ok.SolveMS <= 0 {
		t.Errorf("elapsed_ms = %v, solve_ms = %v, want > 0", ok.ElapsedMS, ok.SolveMS)
	}
	if ok.CacheMisses != 2 {
		t.Errorf("cache_misses = %d, want 2", ok.CacheMisses)
	}
	if ok.Error != "" {
		t.Errorf("successful query logged error %q", ok.Error)
	}
	// artifact_hits is always-present (no omitempty): dashboards
	// difference it against cache_misses even when it is zero.
	if !strings.Contains(lines[0], `"artifact_hits"`) {
		t.Errorf("slow log line missing artifact_hits: %s", lines[0])
	}

	var failed ceps.SlowQueryEntry
	if err := json.Unmarshal([]byte(lines[1]), &failed); err != nil {
		t.Fatalf("slow log line is not JSON: %v\n%s", err, lines[1])
	}
	if failed.Error == "" {
		t.Error("failed query should carry its error in the log entry")
	}

	// A high threshold suppresses logging entirely.
	var quiet bytes.Buffer
	eng2 := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()),
		ceps.WithSlowQueryLog(&quiet, time.Hour))
	if _, err := eng2.Query(queries...); err != nil {
		t.Fatal(err)
	}
	if quiet.Len() != 0 {
		t.Errorf("sub-threshold query was logged: %s", quiet.String())
	}
}

// TestReconfigurePurgeRace hammers Reconfigure (which purges the score
// cache) against concurrent cold-miss queries. The generation guard in
// ScoreCache must drop stores from flights that began before a purge;
// without it, leaders finishing after a purge re-insert vectors whose key
// space is dead, leaving unreclaimable bytes in the budget. After the dust
// settles and a final purge lands, the cache must be truly empty. Run with
// -race: the interleavings this generates are the point.
func TestReconfigurePurgeRace(t *testing.T) {
	ds := smallDataset(t)
	base := quickConfig()
	eng := newEngine(t, ds.Graph, ceps.WithConfig(base), ceps.WithCache(32<<20), ceps.WithWorkers(4))

	alt := base
	alt.RWR.C = 0.7

	stop := make(chan struct{})
	fail := make(chan error, 64)

	var churner sync.WaitGroup
	churner.Add(1)
	go func() {
		defer churner.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			cfg := base
			if i%2 == 1 {
				cfg = alt
			}
			if err := eng.Reconfigure(cfg); err != nil {
				fail <- err
				return
			}
		}
	}()

	// Queriers walk distinct node pairs so every query is a cold miss for
	// whichever config snapshot it runs under — each one opens a flight the
	// churner's purges can race.
	n := ds.Graph.N()
	var queriers sync.WaitGroup
	for w := 0; w < 4; w++ {
		queriers.Add(1)
		go func(w int) {
			defer queriers.Done()
			for i := 0; i < 12; i++ {
				a := (w*31 + i*7) % n
				b := (a + 1 + i) % n
				if a == b {
					b = (b + 1) % n
				}
				if _, err := eng.Query(a, b); err != nil {
					fail <- err
					return
				}
			}
		}(w)
	}
	queriers.Wait()
	close(stop)
	churner.Wait()
	close(fail)
	for err := range fail {
		t.Fatal(err)
	}

	// Final purge with nothing in flight: every byte must be reclaimed. A
	// stale post-purge store from the hammer would have already tripped the
	// generation guard; this asserts the end state is clean either way.
	final := base
	final.RWR.C = 0.33
	if err := eng.Reconfigure(final); err != nil {
		t.Fatal(err)
	}
	stats, ok := eng.CacheStats()
	if !ok {
		t.Fatal("engine should have a cache")
	}
	if stats.BytesUsed != 0 || stats.Entries != 0 {
		t.Fatalf("after final purge: %d entries, %d bytes still accounted (stale post-purge stores leaked)",
			stats.Entries, stats.BytesUsed)
	}
	if stats.Invalidations == 0 {
		t.Error("hammer should have recorded purges")
	}

	// The cache must still work after the storm.
	res, err := eng.Query(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages.CacheMisses == 0 {
		t.Error("post-purge query should miss the empty cache")
	}
}
