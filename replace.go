package ceps

import (
	"context"
	"fmt"
	"time"

	"ceps/internal/bipartite"
	"ceps/internal/core"
	"ceps/internal/fault"
	"ceps/internal/obs"
	"ceps/internal/resilience"
)

// This file is the serving surface for the title paper's own workload,
// Subteam Replacement: Engine.ReplaceSubteam answers "who should fill in
// for the members leaving this team?" with a ranked candidate list, scored
// by RWR proximity to the remaining team (one blocked panel through the
// cache/pool/coalescer, like every other query type) blended with
// structural overlap against the departed members. The CLI `replace` verb
// and POST /v1/replace map onto this surface field-for-field.

// BipartiteGraph is the author–paper incidence substrate
// (bipartite.Graph); attach one with WithBipartite to score replacement
// overlap by exact co-authored-paper counts.
type BipartiteGraph = bipartite.Graph

// BipartiteBuilder accumulates papers into a BipartiteGraph.
type BipartiteBuilder = bipartite.Builder

// NewBipartiteBuilder returns a builder pre-sized for n authors.
func NewBipartiteBuilder(nAuthors int) *BipartiteBuilder {
	return bipartite.NewBuilder(nAuthors)
}

// Replacement is one ranked replacement candidate with its score
// breakdown (core.Replacement).
type Replacement = core.Replacement

// ReplaceResult is the outcome of one subteam-replacement query
// (core.ReplaceResult).
type ReplaceResult = core.ReplaceResult

// ReplaceWeights blends the RWR-proximity and structural-overlap score
// components (core.ReplaceWeights).
type ReplaceWeights = core.ReplaceWeights

// DefaultReplaceWeights is the default component blend (0.7 walk / 0.3
// overlap).
func DefaultReplaceWeights() ReplaceWeights { return core.DefaultReplaceWeights() }

// ReplaceOption adjusts one ReplaceSubteam call. Options are applied in
// order; the last write wins.
type ReplaceOption func(*replaceOptions)

// replaceOptions accumulates per-call state. The zero value means "one
// departing member must still be named via WithDeparting; everything else
// defaults".
type replaceOptions struct {
	spec      core.ReplaceSpec
	timeout   time.Duration
	noDegrade bool
	coalesce  *bool
}

// WithDeparting names the team members leaving (required). They must be a
// non-empty strict subset of the team.
func WithDeparting(members ...int) ReplaceOption {
	return func(ro *replaceOptions) { ro.spec.Departing = append([]int(nil), members...) }
}

// WithCandidatePool supplies the candidate pool explicitly instead of
// deriving it from the graph; team members are filtered out.
func WithCandidatePool(candidates ...int) ReplaceOption {
	return func(ro *replaceOptions) { ro.spec.Candidates = append([]int(nil), candidates...) }
}

// WithDensestPool seeds the candidate pool from the densest subgraph
// (greedy peeling) of the remaining team's two-hop neighborhood, instead
// of the plain two-hop default — candidates embedded in the team's densest
// collaboration cluster. Ignored when WithCandidatePool is given.
func WithDensestPool() ReplaceOption {
	return func(ro *replaceOptions) { ro.spec.Pool = core.PoolDensest }
}

// WithScoreWeights overrides the component blend. Both weights must be
// non-negative with a positive sum; the call fails with ErrBadConfig
// otherwise.
func WithScoreWeights(rwrWeight, overlapWeight float64) ReplaceOption {
	return func(ro *replaceOptions) {
		ro.spec.Weights = ReplaceWeights{RWR: rwrWeight, Overlap: overlapWeight}
	}
}

// WithMaxCandidates caps the scored candidate pool (default 256; negative
// = unlimited). Pool order is deterministic — two-hop pools keep the
// closest candidates — so the cap is too.
func WithMaxCandidates(n int) ReplaceOption {
	return func(ro *replaceOptions) { ro.spec.MaxCandidates = n }
}

// WithReplaceTopN bounds the returned ranking (default 10; negative = the
// whole scored pool).
func WithReplaceTopN(n int) ReplaceOption {
	return func(ro *replaceOptions) { ro.spec.TopN = n }
}

// WithExactScores answers the candidate panel from the dense pre-solved
// inverse (I − cW̃)⁻¹ instead of the iterative kernel — the paper's
// precompute strategy, viable only below the pre-solve node limit (the
// call fails with ErrBadConfig beyond it). Exact scores are the converged
// fixed point rather than the m-sweep iterate, so rankings may differ in
// the last ulps from the default path; use for small-graph ground truth.
func WithExactScores() ReplaceOption {
	return func(ro *replaceOptions) { ro.spec.Exact = true }
}

// WithReplaceTimeout arms a deadline on the call (≤ 0 = none beyond the
// caller's context).
func WithReplaceTimeout(d time.Duration) ReplaceOption {
	return func(ro *replaceOptions) { ro.timeout = d }
}

// WithReplaceNoDegrade makes the call fail with ErrUnavailable instead of
// accepting a reduced-fidelity panel when the circuit breaker is open.
func WithReplaceNoDegrade() ReplaceOption {
	return func(ro *replaceOptions) { ro.noDegrade = true }
}

// WithReplaceCoalesceHint opts the candidate panel in (true) or out
// (false) of the cross-request solve coalescer; answers are bit-identical
// either way.
func WithReplaceCoalesceHint(on bool) ReplaceOption {
	return func(ro *replaceOptions) { ro.coalesce = &on }
}

// ReplaceSubteam ranks replacement candidates for the departing members of
// team — the title paper's Subteam Replacement workload. The candidate
// pool (two-hop neighborhood by default; see WithDensestPool and
// WithCandidatePool) solves as one blocked RWR panel through the engine's
// cache, solve pool and coalescer, and each candidate's walk proximity to
// the remaining members is blended with its structural overlap against the
// departed ones (co-authored-paper counts when WithBipartite attached a
// substrate, the projected-graph shared-collaborator kernel otherwise).
// Answers are deterministic and bit-identical with serving features on or
// off. The resilience layer (when enabled) gates the call like any other
// query: admission control, breaker routing, and degraded (relaxed
// tolerance) panels marked on ReplaceResult.Degraded.
func (e *Engine) ReplaceSubteam(ctx context.Context, team []int, opts ...ReplaceOption) (res *ReplaceResult, err error) {
	defer e.recoverToError(&err)
	ro := replaceOptions{}
	for _, opt := range opts {
		if opt != nil {
			opt(&ro)
		}
	}
	ro.spec.Team = append([]int(nil), team...)
	if ro.spec.Bipartite == nil {
		ro.spec.Bipartite = e.bp
	}
	cfg, _ := e.snapshot() // fast mode does not apply: candidate panels are full-graph
	if ro.coalesce != nil {
		cfg.NoCoalesce = !*ro.coalesce
	}
	if ro.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, ro.timeout)
		defer cancel()
	}
	return e.replaceWith(ctx, cfg, ro.spec, ro.noDegrade)
}

// replaceWith is the metered funnel for subteam-replacement queries,
// mirroring queryWith: admission and breaker routing first, then the core
// scoring pass, then metrics and span attribution. Instrumentation only
// reads the finished result; answers stay bit-identical to an unmetered
// run.
func (e *Engine) replaceWith(ctx context.Context, cfg Config, spec core.ReplaceSpec, noDegrade bool) (*ReplaceResult, error) {
	start := time.Now()
	qctx, span := e.replaceSpan(ctx)
	span.SetAttr(obs.Int("team", len(spec.Team)), obs.Int("departing", len(spec.Departing)),
		obs.Str("pool_strategy", replacePoolLabel(spec)))
	var (
		release  func()
		probe    bool
		degraded *core.Degradation
	)
	if e.res != nil {
		var err error
		release, err = e.res.Admit(qctx)
		if err != nil {
			span.SetAttr(obs.Str("shed", fault.ShedReason(err)))
			span.SetError(err)
			span.End()
			e.metrics.observeReplace(nil, replacePoolLabel(spec), err, time.Since(start))
			e.flight.ObserveQuery(flightReplaceOutcome(nil, err, time.Since(start)))
			return nil, err
		}
		switch e.res.Route() {
		case resilience.RouteProbe:
			probe = true
		case resilience.RouteDegrade:
			if noDegrade || e.res.Options().NoDegrade {
				release()
				err := fmt.Errorf("%w: circuit breaker open", ErrUnavailable)
				e.metrics.errCounter(err).Inc()
				span.SetAttr(obs.Str("shed", "breaker_open"))
				span.SetError(err)
				span.End()
				e.flight.ObserveQuery(flightReplaceOutcome(nil, err, time.Since(start)))
				return nil, err
			}
			cfg, degraded = degradeConfig(cfg, e.res.Options())
		}
	}
	e.metrics.inflight.Add(1)
	res, err := func() (*ReplaceResult, error) {
		defer e.metrics.inflight.Add(-1)
		if release != nil {
			defer release()
		}
		runner, err := e.runnerFor(cfg.RWR)
		if err != nil {
			return nil, err
		}
		return runner.ReplaceSubteamCtx(qctx, spec, cfg)
	}()
	if e.res != nil {
		e.res.Observe(breakerFailure(err), probe)
	}
	if degraded != nil && err == nil && res != nil {
		res.Degraded = degraded
	}
	elapsed := time.Since(start)
	strategy := replacePoolLabel(spec)
	if res != nil {
		res.TraceID = span.TraceID()
		strategy = res.PoolStrategy
		span.SetAttr(obs.Str("pool_strategy", res.PoolStrategy),
			obs.Int("pool_size", res.PoolSize),
			obs.Int("ranked", len(res.Replacements)),
			obs.Str("solve_kernel", res.Stages.SolveKernel),
			obs.Int("solve_sweeps", res.Stages.SolveSweeps),
			obs.Int("cache_hits", res.Stages.CacheHits),
			obs.Int("cache_misses", res.Stages.CacheMisses))
		if res.Degraded != nil {
			span.SetAttr(obs.Str("degraded", res.Degraded.Mode),
				obs.Str("degraded_reason", res.Degraded.Reason))
		}
	}
	span.SetError(err)
	span.End()
	e.metrics.observeReplace(res, strategy, err, elapsed)
	e.flight.ObserveQuery(flightReplaceOutcome(res, err, elapsed))
	return res, err
}

// replacePoolLabel names the requested pool strategy before the core pass
// resolves it — so shed and failed requests still count under the right
// label.
func replacePoolLabel(spec core.ReplaceSpec) string {
	if len(spec.Candidates) > 0 {
		return core.PoolExplicit.String()
	}
	return spec.Pool.String()
}

// replaceSpan opens the per-request span: nested under the caller's
// envelope when ctx carries one, a new root trace otherwise.
func (e *Engine) replaceSpan(ctx context.Context) (context.Context, *obs.Span) {
	if obs.SpanFromContext(ctx) != nil {
		return obs.StartSpan(ctx, "replace")
	}
	return e.tracer.StartRoot(ctx, "replace")
}
